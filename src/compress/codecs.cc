// Built-in codec implementations: identity, fp16, int8, topk-delta.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>

#include "compress/codec.h"
#include "nn/serialize.h"
#include "util/check.h"

namespace compress {
namespace {

template <typename T>
void AppendRaw(std::vector<std::uint8_t>& out, const T& value) {
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(&value);
  out.insert(out.end(), bytes, bytes + sizeof(T));
}

template <typename T>
T ReadRaw(std::span<const std::uint8_t> body, std::size_t* offset,
          const char* what) {
  AF_CHECK_LE(*offset + sizeof(T), body.size())
      << "truncated " << what << " at body byte offset " << *offset;
  T value;
  std::memcpy(&value, body.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return value;
}

// LEB128 unsigned varint, as used for top-k index gaps.
void AppendVarint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

std::uint64_t ReadVarint(std::span<const std::uint8_t> body,
                         std::size_t* offset) {
  std::uint64_t value = 0;
  int shift = 0;
  while (true) {
    AF_CHECK_LT(*offset, body.size())
        << "truncated varint at body byte offset " << *offset;
    AF_CHECK_LT(shift, 64) << "overlong varint at body byte offset "
                           << *offset;
    const std::uint8_t byte = body[(*offset)++];
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      return value;
    }
    shift += 7;
  }
}

// --- identity ----------------------------------------------------------

// Lossless pass-through; the body is a raw AFPM block so an AFCZ/identity
// container is the legacy format with a 35-byte preamble.
class IdentityCodec final : public Codec {
 public:
  const char* name() const override { return "identity"; }
  bool lossless() const override { return true; }

  void EncodeBody(std::span<const float> values,
                  std::vector<std::uint8_t>& out) const override {
    nn::AppendFlatParams(out, values);
  }

  std::vector<float> DecodeBody(std::span<const std::uint8_t> body,
                                std::uint64_t count) const override {
    std::size_t offset = 0;
    std::vector<float> values = nn::ParseFlatParams(body, &offset);
    AF_CHECK_EQ(offset, body.size())
        << "identity body has " << body.size() - offset
        << " trailing bytes after the AFPM block";
    AF_CHECK_EQ(values.size(), count)
        << "identity body count mismatch: AFPM block has " << values.size()
        << ", container declares " << count;
    return values;
  }
};

// --- fp16 --------------------------------------------------------------

class Fp16Codec final : public Codec {
 public:
  const char* name() const override { return "fp16"; }
  bool lossless() const override { return false; }
  // Half precision keeps the sign and scale of every weight, so full model
  // broadcasts survive it (unlike the delta-oriented codecs below).
  bool broadcast_safe() const override { return true; }

  void EncodeBody(std::span<const float> values,
                  std::vector<std::uint8_t>& out) const override {
    out.reserve(out.size() + values.size() * sizeof(std::uint16_t));
    for (float v : values) {
      AppendRaw(out, FloatToHalf(v));
    }
  }

  std::vector<float> DecodeBody(std::span<const std::uint8_t> body,
                                std::uint64_t count) const override {
    AF_CHECK_LE(count, kMaxDecodedElements)
        << "fp16 body declares " << count << " values; refusing anything "
        << "above " << kMaxDecodedElements;
    AF_CHECK_EQ(body.size(), count * sizeof(std::uint16_t))
        << "fp16 body is " << body.size() << " bytes; expected "
        << count * sizeof(std::uint16_t) << " for " << count << " values";
    std::vector<float> values(static_cast<std::size_t>(count));
    for (std::size_t i = 0; i < values.size(); ++i) {
      std::uint16_t half;
      std::memcpy(&half, body.data() + i * sizeof(half), sizeof(half));
      values[i] = HalfToFloat(half);
    }
    return values;
  }
};

// --- int8 --------------------------------------------------------------

// Per-tensor asymmetric uniform quantization: v' = scale * (q - zero_point)
// with q in [0, 255]. Body: f32 scale + i32 zero_point + count u8s. The
// reconstruction error is at most scale/2 per element for finite inputs.
class Int8Codec final : public Codec {
 public:
  const char* name() const override { return "int8"; }
  bool lossless() const override { return false; }
  // Range quantization of a full weight vector is dominated by the largest
  // layer's scale — deltas only on the uplink; broadcasts fall back.
  bool broadcast_safe() const override { return false; }
  bool uses_feedback() const override { return true; }

  void EncodeBody(std::span<const float> values,
                  std::vector<std::uint8_t>& out) const override {
    float lo = std::numeric_limits<float>::infinity();
    float hi = -std::numeric_limits<float>::infinity();
    for (float v : values) {
      if (!std::isfinite(v)) {
        continue;  // non-finite values quantize to the zero point
      }
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    float scale;
    std::int32_t zero_point;
    if (!(lo <= hi)) {           // empty or all non-finite
      scale = 1.0f;
      zero_point = 0;
    } else if (lo == hi) {
      // Constant vector: pick scale = value so q=1, zp=0 decodes exactly;
      // an all-zero vector uses q=0 instead (scale is arbitrary).
      scale = lo == 0.0f ? 1.0f : lo;
      zero_point = 0;
    } else {
      scale = (hi - lo) / 255.0f;
      zero_point = static_cast<std::int32_t>(std::lround(-lo / scale));
    }
    AppendRaw(out, scale);
    AppendRaw(out, zero_point);
    out.reserve(out.size() + values.size());
    for (float v : values) {
      std::uint8_t q;
      if (!std::isfinite(v)) {
        q = static_cast<std::uint8_t>(std::clamp(zero_point, 0, 255));
      } else if (lo == hi) {
        q = lo == 0.0f ? 0 : 1;  // constant-vector special case above
      } else {
        const double ideal = static_cast<double>(v) / scale + zero_point;
        q = static_cast<std::uint8_t>(
            std::clamp<long>(std::lround(ideal), 0, 255));
      }
      out.push_back(q);
    }
  }

  std::vector<float> DecodeBody(std::span<const std::uint8_t> body,
                                std::uint64_t count) const override {
    std::size_t offset = 0;
    const auto scale = ReadRaw<float>(body, &offset, "int8 header");
    const auto zero_point = ReadRaw<std::int32_t>(body, &offset, "int8 header");
    AF_CHECK_EQ(body.size() - offset, count)
        << "int8 body has " << body.size() - offset
        << " quantized bytes; expected " << count;
    std::vector<float> values(static_cast<std::size_t>(count));
    for (std::size_t i = 0; i < values.size(); ++i) {
      // Widen before subtracting: a hostile zero_point near INT32_MIN would
      // overflow the int32 difference (UB) even though q is only 0..255.
      values[i] = scale * static_cast<float>(
                              static_cast<std::int64_t>(body[offset + i]) -
                              static_cast<std::int64_t>(zero_point));
    }
    return values;
  }
};

// --- topk-delta --------------------------------------------------------

// Keeps the k = max(1, ceil(count/10)) largest-magnitude entries of the
// delta. Body: u64 k, then k varint index gaps (first absolute, then
// successive differences minus one), then k fp16 values. Ties in magnitude
// break toward the lower index so the encoding is deterministic.
class TopkDeltaCodec final : public Codec {
 public:
  const char* name() const override { return "topk-delta"; }
  bool lossless() const override { return false; }
  // Dropping 90% of a full weight vector destroys it; this codec is for
  // uplink deltas only and relies on error feedback for convergence.
  bool broadcast_safe() const override { return false; }
  bool uses_feedback() const override { return true; }

  void EncodeBody(std::span<const float> values,
                  std::vector<std::uint8_t>& out) const override {
    const std::size_t count = values.size();
    const std::size_t k = count == 0 ? 0 : std::max<std::size_t>(1, (count + 9) / 10);
    std::vector<std::uint64_t> index(count);
    std::iota(index.begin(), index.end(), 0);
    const auto magnitude = [&values](std::uint64_t i) {
      const float v = values[static_cast<std::size_t>(i)];
      return std::isnan(v) ? std::numeric_limits<float>::infinity()
                           : std::fabs(v);
    };
    if (k < count) {
      std::nth_element(index.begin(), index.begin() + k, index.end(),
                       [&](std::uint64_t a, std::uint64_t b) {
                         const float ma = magnitude(a);
                         const float mb = magnitude(b);
                         return ma > mb || (ma == mb && a < b);
                       });
      index.resize(k);
    }
    std::sort(index.begin(), index.end());
    AppendRaw(out, static_cast<std::uint64_t>(k));
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < index.size(); ++i) {
      // First gap is the absolute index; later gaps are offset by one so a
      // run of adjacent indices costs one byte each.
      AppendVarint(out, i == 0 ? index[i] : index[i] - prev - 1);
      prev = index[i];
    }
    for (std::uint64_t i : index) {
      AppendRaw(out, FloatToHalf(values[static_cast<std::size_t>(i)]));
    }
  }

  std::vector<float> DecodeBody(std::span<const std::uint8_t> body,
                                std::uint64_t count) const override {
    AF_CHECK_LE(count, kMaxDecodedElements)
        << "topk body declares " << count << " values; refusing anything "
        << "above " << kMaxDecodedElements;
    std::size_t offset = 0;
    const auto k = ReadRaw<std::uint64_t>(body, &offset, "topk header");
    AF_CHECK_LE(k, count) << "topk body declares " << k << " entries for "
                          << count << " values";
    std::vector<std::uint64_t> index(static_cast<std::size_t>(k));
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < index.size(); ++i) {
      const std::uint64_t gap = ReadVarint(body, &offset);
      const std::uint64_t idx = i == 0 ? gap : prev + gap + 1;
      AF_CHECK_LT(idx, count)
          << "topk index " << idx << " out of range at body byte offset "
          << offset;
      index[i] = prev = idx;
    }
    AF_CHECK_EQ(body.size() - offset, k * sizeof(std::uint16_t))
        << "topk body has " << body.size() - offset
        << " value bytes; expected " << k * sizeof(std::uint16_t);
    std::vector<float> values(static_cast<std::size_t>(count), 0.0f);
    for (std::size_t i = 0; i < index.size(); ++i) {
      std::uint16_t half;
      std::memcpy(&half, body.data() + offset + i * sizeof(half),
                  sizeof(half));
      values[static_cast<std::size_t>(index[i])] = HalfToFloat(half);
    }
    return values;
  }
};

const IdentityCodec kIdentity;
const Fp16Codec kFp16;
const Int8Codec kInt8;
const TopkDeltaCodec kTopkDelta;

}  // namespace

std::uint16_t FloatToHalf(float value) {
  std::uint32_t f;
  std::memcpy(&f, &value, sizeof(f));
  const auto sign = static_cast<std::uint16_t>((f >> 16) & 0x8000u);
  const std::int32_t exp = static_cast<std::int32_t>((f >> 23) & 0xFFu) - 127;
  std::uint32_t mant = f & 0x007FFFFFu;
  if (exp == 128) {  // inf or NaN
    return mant == 0 ? sign | 0x7C00u : sign | 0x7E00u;
  }
  if (exp > 15) {  // overflow saturates to ±inf
    return sign | 0x7C00u;
  }
  if (exp >= -14) {  // normal half; round 23-bit mantissa to 10, ties-to-even
    std::uint32_t half =
        (static_cast<std::uint32_t>(exp + 15) << 10) | (mant >> 13);
    const std::uint32_t round = mant & 0x1FFFu;
    if (round > 0x1000u || (round == 0x1000u && (half & 1u))) {
      ++half;  // a mantissa carry correctly rolls into the exponent
    }
    return sign | static_cast<std::uint16_t>(half);
  }
  // Subnormal half: value = q · 2^-24 with q a rounded 24-bit mantissa shift.
  mant |= 0x00800000u;  // implicit leading one
  const int shift = -exp - 1;  // 14..24 within subnormal range
  if (shift > 24) {
    return sign;  // below half the least subnormal → ±0
  }
  std::uint32_t q = mant >> shift;
  const std::uint32_t rem = mant & ((1u << shift) - 1);
  const std::uint32_t halfway = 1u << (shift - 1);
  if (rem > halfway || (rem == halfway && (q & 1u))) {
    ++q;
  }
  return sign | static_cast<std::uint16_t>(q);
}

float HalfToFloat(std::uint16_t half) {
  const std::uint32_t sign = static_cast<std::uint32_t>(half & 0x8000u) << 16;
  const std::uint32_t exp = (half >> 10) & 0x1Fu;
  std::uint32_t mant = half & 0x3FFu;
  std::uint32_t f;
  if (exp == 0) {
    if (mant == 0) {
      f = sign;  // ±0
    } else {  // subnormal: renormalize into a float32 exponent
      std::uint32_t e = 113;  // 127 - 14
      while ((mant & 0x400u) == 0) {
        mant <<= 1;
        --e;
      }
      f = sign | (e << 23) | ((mant & 0x3FFu) << 13);
    }
  } else if (exp == 31) {  // inf or NaN
    f = sign | 0x7F800000u | (mant << 13);
  } else {
    f = sign | ((exp + 112) << 23) | (mant << 13);
  }
  float value;
  std::memcpy(&value, &f, sizeof(value));
  return value;
}

const Codec& Identity() { return kIdentity; }

void RegisterBuiltinCodecs(Registry& registry) {
  registry.Register(&kIdentity, {"none", "raw"});
  registry.Register(&kFp16, {"half"});
  registry.Register(&kInt8, {"q8"});
  registry.Register(&kTopkDelta, {"topk"});
}

}  // namespace compress

// Simulation trace export: per-round records and a run summary as CSV, so
// downstream tooling (plots, dashboards, notebooks) can consume runs without
// linking the library.
#pragma once

#include <string>

#include "fl/metrics.h"

namespace fl {

// One row per aggregation round: round, sim_time, test_accuracy (empty when
// not evaluated), buffered/accepted/rejected/deferred/dropped counts, mean
// staleness, and the round's detection confusion counts.
void WriteRoundTraceCsv(const SimulationResult& result,
                        const std::string& path);

// Single-row summary: final accuracy, totals, detection precision/recall.
void WriteSummaryCsv(const SimulationResult& result, const std::string& path);

}  // namespace fl

#include "fl/client_pool.h"

#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <unordered_map>

#include "compress/codec.h"
#include "fl/trace_context.h"
#include "net/frame.h"
#include "net/reactor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/logging.h"

namespace fl {
namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

int ResolvePoolConnections(int requested, int num_clients) {
  if (requested > 0) {
    return std::min(requested, std::max(num_clients, 1));
  }
  const int by_fleet = (std::max(num_clients, 1) + 63) / 64;
  return std::clamp(by_fleet, 1, 256);
}

int ResolvePoolWorkers(int requested) {
  if (requested > 0) {
    return requested;
  }
  const unsigned cores = std::thread::hardware_concurrency();
  return cores == 0 ? 1 : static_cast<int>(cores);
}

// ---------------------------------------------------------------------
// VirtualClientEngine

struct VirtualClientEngine::Impl {
  std::mutex mu;
  std::condition_variable task_ready;
  std::condition_variable idle;
  std::deque<std::function<void()>> queue;
  int in_flight = 0;  // popped but not yet finished
  bool stop = false;
  std::vector<std::thread> workers;
  obs::Gauge& queue_depth =
      obs::DefaultRegistry().GetGauge("pool.queue_depth");

  void WorkerLoop() {
    while (true) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu);
        task_ready.wait(lock, [&] { return stop || !queue.empty(); });
        if (queue.empty()) {
          return;  // stop requested and nothing left to pop
        }
        task = std::move(queue.front());
        queue.pop_front();
        ++in_flight;
        queue_depth.Set(static_cast<double>(queue.size()));
      }
      task();
      {
        std::lock_guard<std::mutex> lock(mu);
        --in_flight;
        if (queue.empty() && in_flight == 0) {
          idle.notify_all();
        }
      }
    }
  }
};

VirtualClientEngine::VirtualClientEngine(int workers)
    : impl_(std::make_unique<Impl>()) {
  const int count = ResolvePoolWorkers(workers);
  obs::DefaultRegistry().GetGauge("pool.workers").Set(count);
  impl_->workers.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    impl_->workers.emplace_back([this] { impl_->WorkerLoop(); });
  }
}

VirtualClientEngine::~VirtualClientEngine() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->task_ready.notify_all();
  for (std::thread& worker : impl_->workers) {
    worker.join();
  }
}

void VirtualClientEngine::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->queue.push_back(std::move(task));
    impl_->queue_depth.Set(static_cast<double>(impl_->queue.size()));
  }
  impl_->task_ready.notify_one();
}

void VirtualClientEngine::Drain() {
  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->idle.wait(lock,
                   [&] { return impl_->queue.empty() && impl_->in_flight == 0; });
}

int VirtualClientEngine::worker_count() const {
  return static_cast<int>(impl_->workers.size());
}

// ---------------------------------------------------------------------
// VirtualClientPool

namespace {

// One pool connection: the socket plus its read scratch and the outbox the
// engine workers fill. `out` is the only cross-thread state (out_mu).
struct PoolConn {
  net::Connection conn;
  const compress::Codec* codec = nullptr;  // set by pump before any job
  bool done = false;                       // saw Shutdown or EOF
  std::vector<std::uint8_t> in;
  std::size_t in_offset = 0;
  std::mutex out_mu;
  std::vector<std::uint8_t> out;
  std::size_t out_offset = 0;
};

}  // namespace

struct VirtualClientPool::Impl {
  VirtualPoolOptions options;
  TrainFn train;
  NumSamplesFn num_samples;

  net::Reactor reactor;  // owned by the pump thread after Start()
  std::vector<std::unique_ptr<PoolConn>> conns;
  std::vector<PoolConn*> by_fd_sparse;  // index: fd → conn (bounded, dense)
  std::vector<compress::FeedbackState> feedback;  // one per client id
  std::vector<double> latency_ms;                 // one per client id
  std::unique_ptr<VirtualClientEngine> engine;
  std::thread pump;
  std::atomic<bool> stop{false};
  std::atomic<bool> started{false};

  // Per-client serialization: FedBuff may dispatch several outstanding jobs
  // to one client (the real fleet serializes them on the client's socket).
  // A client's jobs must not run concurrently — TrainOnce reuses the
  // client's model buffers — and must encode in arrival order so
  // error-feedback codecs see the same residual sequence as a real worker.
  // busy[c] marks a job running; later arrivals wait in backlog[c].
  std::mutex sched_mu;
  std::vector<std::uint8_t> client_busy;
  std::unordered_map<int, std::deque<VirtualJob>> client_backlog;

  obs::Counter& jobs = obs::DefaultRegistry().GetCounter("pool.jobs");
  obs::Counter& acks_dropped =
      obs::DefaultRegistry().GetCounter("pool.acks_ignored");

  Impl() : reactor(net::ReactorOptions{1}) {}

  PoolConn* FindConn(int fd) {
    return fd >= 0 && fd < static_cast<int>(by_fd_sparse.size())
               ? by_fd_sparse[static_cast<std::size_t>(fd)]
               : nullptr;
  }

  // --- pump side --------------------------------------------------------

  void PumpLoop() {
    util::SetThreadLogPrefix("pool");
    std::vector<net::ReactorEvent> events;
    while (!stop.load(std::memory_order_relaxed)) {
      bool all_done = true;
      for (const auto& pc : conns) {
        all_done = all_done && pc->done;
      }
      if (all_done) {
        break;
      }
      events.clear();
      reactor.Wait(50, &events);
      for (const net::ReactorEvent& event : events) {
        PoolConn* pc = FindConn(event.fd);
        if (pc == nullptr || pc->done) {
          continue;
        }
        if (event.error) {
          pc->done = true;
          continue;
        }
        if (event.readable || event.hangup) {
          ReadPoolConn(*pc);
        }
      }
      FlushOutboxes();
    }
    util::SetThreadLogPrefix("");
  }

  void ReadPoolConn(PoolConn& pc) {
    while (true) {
      std::uint8_t chunk[16384];
      const ssize_t n = ::recv(pc.conn.fd(), chunk, sizeof(chunk), 0);
      if (n == 0) {
        ProcessConnInbuf(pc);
        pc.done = true;  // server closed
        return;
      }
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
          break;
        }
        pc.done = true;
        return;
      }
      pc.in.insert(pc.in.end(), chunk, chunk + n);
    }
    ProcessConnInbuf(pc);
  }

  void ProcessConnInbuf(PoolConn& pc) {
    while (!pc.done) {
      net::FrameView frame;
      std::size_t consumed = 0;
      try {
        consumed = net::DecodeFrameView(
            std::span<const std::uint8_t>(pc.in).subspan(pc.in_offset),
            &frame);
      } catch (const util::CheckError& e) {
        AF_LOG(kWarn) << "pool: malformed frame from server: " << e.what();
        pc.done = true;
        break;
      }
      if (consumed == 0) {
        break;
      }
      pc.in_offset += consumed;
      HandleServerFrame(pc, frame);
    }
    if (pc.in_offset == pc.in.size()) {
      pc.in.clear();
      pc.in_offset = 0;
    } else if (pc.in_offset > 0) {
      pc.in.erase(pc.in.begin(),
                  pc.in.begin() + static_cast<std::ptrdiff_t>(pc.in_offset));
      pc.in_offset = 0;
    }
  }

  void HandleServerFrame(PoolConn& pc, const net::FrameView& frame) {
    switch (frame.type) {
      case net::MessageType::kShutdown:
        pc.done = true;
        return;
      case net::MessageType::kAck:
        // Receipt for an update we sent exactly once over reliable TCP —
        // nothing to retire.
        acks_dropped.Increment();
        return;
      case net::MessageType::kCodecOffer: {
        // Pick the first offered codec this build knows; identity otherwise.
        const net::CodecOfferMsg offer = net::DecodeCodecOffer(frame);
        std::string pick = "identity";
        for (const std::string& name : offer.codecs) {
          if (compress::Has(name)) {
            pick = name;
            break;
          }
        }
        QueueToConn(pc, net::EncodeCodecSelect({pick}));
        const compress::Codec& selected = compress::Get(pick);
        pc.codec = compress::IsIdentity(selected) ? nullptr : &selected;
        return;
      }
      case net::MessageType::kTraceOffer:
        net::DecodeTraceOffer(frame);
        QueueToConn(pc, net::EncodeTraceSelect({options.trace_context}));
        return;
      case net::MessageType::kShmOffer:
        // Rings are per-connection-pair; a mux connection declines (the
        // server skips the offer for kHello sessions anyway).
        net::DecodeShmOffer(frame);
        QueueToConn(pc, net::EncodeShmSelect({false}));
        return;
      case net::MessageType::kModelBroadcast: {
        const net::ModelBroadcastMsg msg = net::DecodeModelBroadcast(frame);
        AF_CHECK_GE(msg.client_id, 0)
            << "pool: broadcast without an AFVC client-id block";
        AF_CHECK_LT(msg.client_id, options.num_clients)
            << "pool: broadcast for unknown client " << msg.client_id;
        VirtualJob job;
        job.client_id = msg.client_id;
        job.job_index = msg.job_index;
        job.round = msg.round;
        job.trace_id = msg.trace_id;
        job.parent_span_id = msg.parent_span_id;
        // Owned copy: the frame buffer is recycled as soon as we return.
        job.base.assign(msg.params.begin(), msg.params.end());
        jobs.Increment();
        {
          std::lock_guard<std::mutex> lock(sched_mu);
          auto& busy =
              client_busy[static_cast<std::size_t>(job.client_id)];
          if (busy != 0) {
            client_backlog[job.client_id].push_back(std::move(job));
            return;
          }
          busy = 1;
        }
        SubmitJob(pc, std::move(job));
        return;
      }
      default:
        AF_LOG(kWarn) << "pool: unexpected " << MessageTypeName(frame.type)
                      << " frame from server; ignoring";
        return;
    }
  }

  void QueueToConn(PoolConn& pc, const net::Frame& frame) {
    std::lock_guard<std::mutex> lock(pc.out_mu);
    net::AppendFrameBytes(pc.out, frame);
  }

  void FlushOutboxes() {
    for (const auto& pc : conns) {
      if (pc->done) {
        continue;
      }
      std::lock_guard<std::mutex> lock(pc->out_mu);
      while (pc->out_offset < pc->out.size()) {
        const ssize_t n =
            ::send(pc->conn.fd(), pc->out.data() + pc->out_offset,
                   pc->out.size() - pc->out_offset, MSG_NOSIGNAL);
        if (n < 0) {
          if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
            break;  // kernel buffer full; retry on the next wake
          }
          pc->done = true;
          break;
        }
        pc->out_offset += static_cast<std::size_t>(n);
      }
      if (pc->out_offset == pc->out.size()) {
        pc->out.clear();
        pc->out_offset = 0;
      }
      reactor.SetWantWrite(pc->conn.fd(),
                           !pc->done && pc->out_offset < pc->out.size());
    }
  }

  // --- engine side ------------------------------------------------------

  void SubmitJob(PoolConn& pc, VirtualJob job) {
    PoolConn* conn_ptr = &pc;
    engine->Submit([this, conn_ptr, job = std::move(job)]() mutable {
      RunJob(*conn_ptr, std::move(job));
    });
  }

  void RunJob(PoolConn& pc, VirtualJob job) {
    const double latency =
        latency_ms[static_cast<std::size_t>(job.client_id)];
    if (latency > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(latency));
    }
    net::ClientUpdateMsg update;
    update.client_id = job.client_id;
    update.job_index = job.job_index;
    update.base_round = job.round;
    update.num_samples = num_samples(job.client_id);
    // Echo the broadcast's trace id; the train span below and the server's
    // defense span share it, which is the join key tools/merge_traces.py
    // stitches timelines on.
    update.trace_id = job.trace_id;
    update.parent_span_id = TrainSpanId(job.trace_id);
    std::vector<float> delta;
    {
      obs::ScopedSpan span(
          "net.worker.train",
          job.trace_id == 0
              ? obs::TraceContext{}
              : obs::TraceContext{job.trace_id, TrainSpanId(job.trace_id),
                                  job.parent_span_id});
      delta = train(job);
    }
    update.delta = net::UpdateView(std::span<const float>(delta), nullptr);
    {
      std::lock_guard<std::mutex> lock(pc.out_mu);
      // Same-client jobs are serialized (client_busy), so this encode is
      // the only writer of this client's feedback residual.
      net::AppendClientUpdateFrame(
          pc.out, update, pc.codec,
          &feedback[static_cast<std::size_t>(job.client_id)]);
    }
    reactor.Wakeup();

    // Release the client or chain its next backlogged job, in order.
    std::optional<VirtualJob> next;
    {
      std::lock_guard<std::mutex> lock(sched_mu);
      auto it = client_backlog.find(job.client_id);
      if (it == client_backlog.end() || it->second.empty()) {
        client_busy[static_cast<std::size_t>(job.client_id)] = 0;
      } else {
        next = std::move(it->second.front());
        it->second.pop_front();
        if (it->second.empty()) {
          client_backlog.erase(it);
        }
      }
    }
    if (next.has_value()) {
      SubmitJob(pc, std::move(*next));
    }
  }
};

VirtualClientPool::VirtualClientPool(VirtualPoolOptions options,
                                     TrainFn train, NumSamplesFn num_samples)
    : impl_(std::make_unique<Impl>()) {
  AF_CHECK_GT(options.num_clients, 0);
  AF_CHECK(train != nullptr);
  AF_CHECK(num_samples != nullptr);
  impl_->options = options;
  impl_->train = std::move(train);
  impl_->num_samples = std::move(num_samples);
}

VirtualClientPool::~VirtualClientPool() {
  try {
    Stop();
  } catch (...) {
    // Destructor must not throw.
  }
}

void VirtualClientPool::Start() {
  Impl& impl = *impl_;
  AF_CHECK(!impl.started.load()) << "pool started twice";
  const VirtualPoolOptions& opt = impl.options;
  const int connections =
      ResolvePoolConnections(opt.connections, opt.num_clients);

  impl.feedback.resize(static_cast<std::size_t>(opt.num_clients));
  impl.client_busy.resize(static_cast<std::size_t>(opt.num_clients), 0);
  impl.latency_ms.resize(static_cast<std::size_t>(opt.num_clients), 0.0);
  if (opt.latency.base_ms > 0.0) {
    for (int c = 0; c < opt.num_clients; ++c) {
      impl.latency_ms[static_cast<std::size_t>(c)] =
          opt.latency.base_ms /
          std::pow(static_cast<double>(c + 1), opt.latency.zipf_s);
    }
  }

  // Client c rides connection c % connections; each connection announces
  // its slice with one multiplexed hello.
  std::vector<net::HelloMsg> hellos(static_cast<std::size_t>(connections));
  for (int c = 0; c < opt.num_clients; ++c) {
    hellos[static_cast<std::size_t>(c % connections)].client_ids.push_back(c);
  }
  impl.conns.reserve(static_cast<std::size_t>(connections));
  for (int i = 0; i < connections; ++i) {
    auto pc = std::make_unique<PoolConn>();
    pc->conn = net::ConnectWithRetry(
        opt.port, opt.retry,
        opt.seed ^ (0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(i)));
    pc->conn.SendFrame(net::EncodeHello(hellos[static_cast<std::size_t>(i)]),
                       opt.io_timeout_ms);
    const int fd = pc->conn.fd();
    if (fd >= static_cast<int>(impl.by_fd_sparse.size())) {
      impl.by_fd_sparse.resize(static_cast<std::size_t>(fd) + 1, nullptr);
    }
    impl.by_fd_sparse[static_cast<std::size_t>(fd)] = pc.get();
    // Pre-Start registration is safe: the pump thread (the reactor's owner
    // after this) does not exist yet.
    impl.reactor.Add(fd);
    impl.conns.push_back(std::move(pc));
  }
  obs::DefaultRegistry().GetGauge("pool.connections").Set(connections);

  impl.engine = std::make_unique<VirtualClientEngine>(opt.workers);
  impl.pump = std::thread([this] { impl_->PumpLoop(); });
  impl.started.store(true);
}

void VirtualClientPool::Stop() {
  Impl& impl = *impl_;
  if (impl.pump.joinable()) {
    impl.stop.store(true, std::memory_order_relaxed);
    impl.reactor.Wakeup();
    impl.pump.join();
  }
  if (impl.engine != nullptr) {
    // Engine tasks may still be encoding into outboxes; wait them out
    // before the connections die under them.
    impl.engine->Drain();
    impl.engine.reset();
  }
  impl.conns.clear();
  impl.by_fd_sparse.clear();
}

int VirtualClientPool::connection_count() const {
  return static_cast<int>(impl_->conns.size());
}

int VirtualClientPool::worker_count() const {
  return impl_->engine == nullptr ? 0 : impl_->engine->worker_count();
}

}  // namespace fl

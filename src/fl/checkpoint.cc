#include "fl/checkpoint.h"

#include <sys/stat.h>

#include <chrono>
#include <cstring>
#include <span>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/serial.h"

namespace fl {
namespace {

constexpr char kMagic[4] = {'A', 'F', 'C', 'K'};

std::uint64_t Fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::uint8_t byte : bytes) {
    hash ^= byte;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

void SaveCheckpoint(const std::string& path, const Simulation& sim) {
  AF_CHECK(!path.empty()) << "checkpoint: empty path";
  const auto start = std::chrono::steady_clock::now();

  util::serial::Writer payload;
  sim.SaveState(payload);
  const std::uint64_t checksum = Fnv1a(payload.buffer());

  util::serial::Writer file;
  file.Raw(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(kMagic), sizeof(kMagic)));
  file.U32(kCheckpointVersion);
  file.U64(payload.size());
  file.U64(checksum);
  file.Raw(payload.buffer());
  util::serial::AtomicWriteFile(path, file.buffer());

  const auto elapsed = std::chrono::steady_clock::now() - start;
  const auto millis =
      std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count();
  obs::MetricsRegistry& registry = obs::DefaultRegistry();
  registry.GetCounter("checkpoint.writes").Increment();
  registry.GetCounter("checkpoint.bytes").Increment(file.size());
  registry.GetHistogram("checkpoint.write_ms")
      .Record(static_cast<double>(millis));
  AF_LOG(kDebug) << "checkpoint: wrote " << file.size() << " bytes to "
                 << path << " at round " << sim.current_round() << " ("
                 << millis << " ms)";
}

void RestoreCheckpointBytes(std::span<const std::uint8_t> bytes,
                            Simulation& sim) {
  util::serial::Reader header(bytes);

  char magic[4] = {};
  std::span<const std::uint8_t> tail = header.Tail();
  AF_CHECK_GE(tail.size(), sizeof(magic)) << "checkpoint: file too short";
  std::memcpy(magic, tail.data(), sizeof(magic));
  header.Skip(sizeof(magic));
  AF_CHECK(std::memcmp(magic, kMagic, sizeof(magic)) == 0)
      << "checkpoint: bad magic";
  const std::uint32_t version = header.U32();
  AF_CHECK_EQ(version, kCheckpointVersion)
      << "checkpoint: unsupported format version";
  const std::uint64_t payload_size = header.U64();
  const std::uint64_t checksum = header.U64();
  AF_CHECK_EQ(payload_size, header.remaining())
      << "checkpoint: payload size mismatch";

  std::span<const std::uint8_t> payload = header.Tail();
  AF_CHECK_EQ(Fnv1a(payload), checksum) << "checkpoint: checksum mismatch";

  util::serial::Reader reader(payload);
  sim.LoadState(reader);
  AF_CHECK(reader.AtEnd()) << "checkpoint: " << reader.remaining()
                           << " unread payload bytes";
}

bool RestoreCheckpoint(const std::string& path, Simulation& sim) {
  if (!CheckpointExists(path)) {
    return false;
  }
  const std::vector<std::uint8_t> bytes = util::serial::ReadFileBytes(path);
  try {
    RestoreCheckpointBytes(bytes, sim);
  } catch (const util::CheckError& e) {
    throw util::CheckError(std::string(e.what()) + " [file: " + path + "]");
  }
  obs::DefaultRegistry().GetCounter("checkpoint.restores").Increment();
  AF_LOG(kInfo) << "checkpoint: restored " << path << " at round "
                << sim.current_round();
  return true;
}

bool CheckpointExists(const std::string& path) {
  struct stat st{};
  return !path.empty() && ::stat(path.c_str(), &st) == 0 &&
         S_ISREG(st.st_mode);
}

}  // namespace fl

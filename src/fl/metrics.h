// Per-round records and run-level summaries produced by the simulator.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

namespace fl {

// Detection bookkeeping treats "rejected" as the positive (attack) class.
struct ConfusionCounts {
  std::size_t true_positive = 0;   // malicious rejected
  std::size_t false_positive = 0;  // benign rejected
  std::size_t true_negative = 0;   // benign accepted/deferred
  std::size_t false_negative = 0;  // malicious accepted/deferred

  void Add(const ConfusionCounts& other);
  double Precision() const;
  double Recall() const;
};

struct RoundRecord {
  std::size_t round = 0;
  double sim_time = 0.0;        // simulated clock at aggregation
  double test_accuracy = -1.0;  // -1 when this round was not evaluated
  std::size_t buffered = 0;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  std::size_t deferred = 0;
  std::size_t dropped_stale = 0;  // arrivals over the staleness limit
  double mean_staleness = 0.0;
  // Wall-clock cost of Defense::Process for this round (server overhead).
  long long defense_micros = 0;
  // Staleness τ → number of buffered updates with that τ this round.
  std::map<std::size_t, std::size_t> staleness_histogram;
  ConfusionCounts confusion;
};

// Distribution summary of the per-round Defense::Process wall-clock cost
// (the paper's Table 10 "server overhead" claim, now with tails).
struct LatencySummary {
  long long total_micros = 0;
  std::size_t samples = 0;
  double p50_micros = 0.0;
  double p95_micros = 0.0;
  double p99_micros = 0.0;
  double max_micros = 0.0;
};

struct SimulationResult {
  std::vector<RoundRecord> rounds;
  // Mean of the last up-to-3 evaluated accuracies — the "final global model
  // accuracy" reported in every paper table.
  double final_accuracy = 0.0;
  ConfusionCounts total_confusion;
  std::size_t total_dropped_stale = 0;
  // Clients that disconnected mid-run (distributed mode only; the server
  // kept aggregating from the survivors).
  std::size_t evicted_clients = 0;
  // End-to-end RunExperiment wall time (dataset synthesis through final
  // eval), the number the GEMM-core perf work moves.
  double wall_seconds = 0.0;
  // True when Run() stopped early on a graceful-stop request (SIGTERM via
  // CheckpointPolicy::stop); the rounds completed so far are reported and,
  // when a checkpoint path is configured, a final checkpoint was written.
  bool interrupted = false;
  LatencySummary defense_latency;
  std::vector<float> final_model;
};

// Fills the derived summary fields from `rounds`.
void FinalizeResult(SimulationResult& result);

}  // namespace fl

#include "fl/simulation.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <sstream>
#include <unordered_map>

#include "compress/codec.h"
#include "fl/checkpoint.h"
#include "fl/trace_context.h"
#include "nn/serialize.h"
#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/zipf.h"
#include "util/check.h"
#include "util/logging.h"

namespace fl {

Simulation::Simulation(ExperimentSpec spec)
    : config_(spec.sim),
      spec_(spec.model),
      attack_(std::move(spec.attack)),
      coordinator_(spec.sim.attacker_window),
      defense_(std::move(spec.defense)),
      test_set_(spec.test_set),
      server_root_(std::move(spec.server_root)),
      rngs_(spec.sim.seed),
      participation_rng_(rngs_.Stream("participation")),
      server_rng_(rngs_.Stream("server-defense")) {
  const compress::Codec* codec =
      spec.codec.empty() ? nullptr : &compress::Get(spec.codec);
  if (codec != nullptr && compress::IsIdentity(*codec)) {
    codec = nullptr;  // identity is the no-op everywhere downstream
  }
  if (spec.backend != nullptr) {
    AF_CHECK(spec.clients.empty())
        << "ExperimentSpec: set either `backend` or `clients`+`pool`, not both";
    AF_CHECK(spec.pool == nullptr)
        << "ExperimentSpec: `pool` belongs to the clients form";
    AF_CHECK(codec == nullptr)
        << "ExperimentSpec: `codec` belongs to the clients form (a caller "
           "backend compresses on its own transport)";
    backend_ = spec.backend;
  } else {
    AF_CHECK(!spec.clients.empty())
        << "ExperimentSpec: one of `backend` or `clients` must be set";
    AF_CHECK(spec.pool != nullptr)
        << "ExperimentSpec: the clients form needs a thread `pool`";
    owned_backend_ = std::make_unique<InprocBackend>(
        std::move(spec.clients), spec.pool, config_.seed, config_.local,
        codec);
    backend_ = owned_backend_.get();
    if (codec != nullptr && codec->broadcast_safe()) {
      checkpoint_codec_ = codec;
    }
  }
  malicious_.assign(backend_->ClientCount(), false);
  for (int id : spec.malicious_ids) {
    AF_CHECK_GE(id, 0);
    AF_CHECK_LT(static_cast<std::size_t>(id), malicious_.size());
    malicious_[static_cast<std::size_t>(id)] = true;
  }
  Init();
}

std::unique_ptr<Simulation> BuildSimulation(ExperimentSpec spec) {
  return std::make_unique<Simulation>(std::move(spec));
}

void Simulation::Init() {
  AF_CHECK(backend_ != nullptr);
  AF_CHECK_GT(backend_->ClientCount(), 0u);
  AF_CHECK_GT(config_.participation, 0.0);
  AF_CHECK_LE(config_.participation, 1.0);
  AF_CHECK_GT(config_.server_learning_rate, 0.0);
  AF_CHECK(attack_ != nullptr);
  AF_CHECK(defense_ != nullptr);
  AF_CHECK(test_set_ != nullptr);
  AF_CHECK_GT(config_.buffer_goal, 0u);
  AF_CHECK_LE(config_.buffer_goal, backend_->ClientCount())
      << "aggregation bound exceeds client count";

  auto latency_rng = rngs_.Stream("latency");
  latencies_ = stats::SampleClientLatencies(backend_->ClientCount(),
                                            config_.zipf_s,
                                            config_.base_latency, latency_rng);
  job_counters_.assign(backend_->ClientCount(), 0);

  // Initial global model.
  auto init = spec_.factory(config_.seed);
  global_ = std::make_shared<const std::vector<float>>(init->GetFlatParams());

  if (defense_->RequiresServerReference()) {
    AF_CHECK_GT(server_root_.size(), 0u)
        << defense_->Name() << " requires a server root dataset";
    std::vector<std::size_t> all(server_root_.size());
    std::iota(all.begin(), all.end(), 0u);
    server_trainer_ = std::make_unique<Client>(-1, &server_root_,
                                               std::move(all), spec_,
                                               config_.seed ^ 0x5eedULL);
  }
}

bool Simulation::IsMalicious(int client_id) const {
  return malicious_[static_cast<std::size_t>(client_id)];
}

std::size_t Simulation::EffectiveGoal() const {
  const std::size_t alive = backend_->AliveCount();
  AF_CHECK_GT(alive, 0u) << "every client disconnected; cannot aggregate";
  return std::min(config_.buffer_goal, alive);
}

void Simulation::Dispatch(int client_id, double now) {
  if (!backend_->IsAlive(client_id)) {
    return;  // evicted clients are no longer scheduled
  }
  const std::size_t idx = static_cast<std::size_t>(client_id);
  double start_delay = 0.0;
  if (config_.participation < 1.0) {
    std::uniform_real_distribution<double> uniform(0.0, 1.0);
    if (uniform(participation_rng_) >= config_.participation) {
      start_delay = latencies_[idx];  // sit out roughly one job's worth
    }
  }
  Job job;
  job.completion_time = now + start_delay + latencies_[idx];
  job.client_id = client_id;
  job.dispatch_round = round_;
  job.job_index = job_counters_[idx]++;
  job.base = global_;
  events_.push(std::move(job));
}

std::vector<float> Simulation::ServerReferenceUpdate() {
  AF_TRACE_SPAN("server.reference");
  AF_CHECK(server_trainer_ != nullptr);
  auto rng = rngs_.Stream("server-reference", round_);
  return server_trainer_->TrainOnce(*global_, config_.local, rng);
}

void Simulation::WriteCheckpoint() const {
  SaveCheckpoint(checkpoint_.path, *this);
}

SimulationResult Simulation::Run() {
  AF_TRACE_SPAN("sim.run");
  auto eval_model = spec_.factory(config_.seed);
  bool interrupted = false;

  // Run-level metrics; labelled by defense so grid runs stay separable.
  const obs::Labels metric_labels{{"defense", defense_->Name()}};
  obs::MetricsRegistry& registry = obs::DefaultRegistry();
  obs::Histogram& defense_latency_us =
      registry.GetHistogram("defense.latency_us", metric_labels);
  obs::Histogram& staleness_hist =
      registry.GetHistogram("sim.update_staleness", metric_labels,
                            {.first_bound = 1.0, .growth = 2.0,
                             .bucket_count = 12});
  obs::Counter& rounds_counter = registry.GetCounter("sim.rounds",
                                                     metric_labels);
  obs::Gauge& round_gauge = registry.GetGauge("sim.round", metric_labels);
  obs::AuditTrail& audit = obs::AuditTrail::Global();

  // Kick off every client (the paper's sampler selects all 100 each round).
  // A restored run skips this: its event queue, RNG positions, and job
  // counters came out of the checkpoint.
  if (!resumed_) {
    for (std::size_t c = 0; c < backend_->ClientCount(); ++c) {
      Dispatch(static_cast<int>(c), 0.0);
    }
  }

  while (round_ < config_.rounds) {
    round_gauge.Set(static_cast<double>(round_));
    auto attack_rng = rngs_.Stream("attack", round_);

    // Fill the buffer up to the aggregation bound. Normally one pass; a
    // client evicted mid-batch loses its jobs, so the loop may take another
    // pass over the survivors.
    while (buffer_.size() < EffectiveGoal()) {
      const std::size_t goal = EffectiveGoal();
      std::vector<Job> batch;
      while (buffer_.size() + batch.size() < goal) {
        AF_CHECK(!events_.empty()) << "event queue drained";
        Job job = events_.top();
        events_.pop();
        now_ = job.completion_time;
        if (!backend_->IsAlive(job.client_id)) {
          continue;  // job of an evicted client; nothing to re-dispatch
        }
        const std::size_t staleness = round_ - job.dispatch_round;
        Dispatch(job.client_id, now_);  // client immediately starts a new job
        if (staleness > config_.staleness_limit) {
          ++dropped_this_round_;
          continue;  // server refuses over-stale arrivals without training
        }
        batch.push_back(std::move(job));
      }

      // Local training for all arrivals — thread pool or wire round-trips,
      // depending on the backend.
      std::vector<TrainJob> train_jobs;
      train_jobs.reserve(batch.size());
      for (const Job& job : batch) {
        train_jobs.push_back({job.client_id, job.job_index,
                              job.dispatch_round, job.base});
      }
      const std::vector<net::UpdateView> honest = backend_->Train(train_jobs);
      AF_CHECK_EQ(honest.size(), batch.size());

      // Sequential report processing in arrival order (attacker coordination
      // must observe a deterministic order).
      for (std::size_t j = 0; j < batch.size(); ++j) {
        const Job& job = batch[j];
        if (honest[j].empty()) {
          // Client evicted mid-round: aggregate from the survivors.
          AF_LOG(kWarn) << "sim: client " << job.client_id
                        << " lost mid-round " << round_
                        << "; continuing with survivors";
          continue;
        }
        ModelUpdate update;
        update.client_id = job.client_id;
        update.base_round = job.dispatch_round;
        update.arrival_round = round_;
        update.staleness = round_ - job.dispatch_round;
        update.num_samples = backend_->NumSamples(job.client_id);
        // Observability sidecar. The trace id is a pure function of
        // (seed, client, job) — the same id the tcp backend stamped on the
        // broadcast — so it costs a mix, never an RNG draw. Wire stats and
        // the queue-entry clock stamp only matter to the audit trail.
        update.trace_id =
            TraceIdFor(config_.seed, job.client_id, job.job_index);
        if (audit.enabled()) {
          TrainBackend::WireStats wire =
              backend_->UpdateWireStats(job.client_id, job.job_index);
          update.codec = std::move(wire.codec);
          update.wire_bytes = wire.wire_bytes;
          update.enqueued_ns = obs::TraceRecorder::NowNs();
        }
        if (IsMalicious(job.client_id)) {
          coordinator_.Absorb(honest[j]);
          const auto window = coordinator_.Window();
          attacks::AttackContext ctx;
          ctx.honest_update = honest[j];
          ctx.colluder_updates = &window;
          ctx.rng = &attack_rng;
          update.delta = attack_->Craft(ctx);
          update.is_malicious_truth = true;
        } else {
          update.delta = honest[j];
        }
        buffer_.push_back(std::move(update));
      }
    }

    AF_CHECK_GE(buffer_.size(), EffectiveGoal());

    // Refresh staleness of deferred leftovers and drop over-stale ones.
    std::vector<ModelUpdate> live;
    live.reserve(buffer_.size());
    for (auto& update : buffer_) {
      update.staleness = round_ - update.base_round;
      update.arrival_round = round_;
      if (update.staleness > config_.staleness_limit) {
        ++dropped_this_round_;
        continue;
      }
      live.push_back(std::move(update));
    }
    buffer_.swap(live);
    if (buffer_.empty()) {
      continue;  // everything went stale; keep collecting
    }

    if (observer_) {
      observer_(round_, buffer_);
    }

    // Defense + aggregation.
    defense::FilterContext ctx;
    ctx.round = round_;
    ctx.global_model = *global_;
    ctx.max_staleness = config_.staleness_limit;
    ctx.staleness_weighting = config_.staleness_weighting;
    ctx.rng = &server_rng_;
    std::vector<float> server_ref;
    if (defense_->RequiresServerReference()) {
      server_ref = ServerReferenceUpdate();
      ctx.server_reference = server_ref;
    }
    const auto defense_start = std::chrono::steady_clock::now();
    defense::AggregationResult agg;
    {
      AF_TRACE_SPAN("defense.process");
      agg = defense_->Process(ctx, buffer_);
    }
    const auto defense_end = std::chrono::steady_clock::now();
    AF_CHECK_EQ(agg.verdicts.size(), buffer_.size());

    const auto defense_start_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            defense_start.time_since_epoch())
            .count());
    const auto defense_end_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            defense_end.time_since_epoch())
            .count());
    const double defense_us =
        static_cast<double>(defense_end_ns - defense_start_ns) / 1e3;
    // Scores align with updates only when the defense filled them.
    const bool has_scores = agg.scores.size() == buffer_.size();

    RoundRecord record;
    record.round = round_;
    record.sim_time = now_;
    record.buffered = buffer_.size();
    record.dropped_stale = dropped_this_round_;
    dropped_this_round_ = 0;
    double staleness_sum = 0.0;
    for (std::size_t i = 0; i < buffer_.size(); ++i) {
      staleness_sum += static_cast<double>(buffer_[i].staleness);
      ++record.staleness_histogram[buffer_[i].staleness];
      staleness_hist.Record(static_cast<double>(buffer_[i].staleness));
      const bool rejected = agg.verdicts[i] == defense::Verdict::kRejected;
      const bool deferred = agg.verdicts[i] == defense::Verdict::kDeferred;
      const bool malicious = buffer_[i].is_malicious_truth;
      if (rejected) {
        ++record.rejected;
        if (malicious) {
          ++record.confusion.true_positive;
        } else {
          ++record.confusion.false_positive;
        }
      } else {
        if (deferred) {
          ++record.deferred;
        } else {
          ++record.accepted;
        }
        if (malicious) {
          ++record.confusion.false_negative;
        } else {
          ++record.confusion.true_negative;
        }
      }
      // Audit trail: one record per update the defense saw, in the same
      // loop that tallies RoundRecord, so the two can never disagree.
      if (audit.enabled()) {
        obs::AuditRecord entry;
        entry.round = round_;
        entry.client_id = buffer_[i].client_id;
        entry.staleness = buffer_[i].staleness;
        entry.has_score = has_scores;
        entry.score = has_scores ? agg.scores[i] : 0.0;
        entry.verdict = rejected   ? obs::AuditVerdict::kFiltered
                        : deferred ? obs::AuditVerdict::kDeferred
                                   : obs::AuditVerdict::kKept;
        entry.codec = buffer_[i].codec;
        entry.wire_bytes = buffer_[i].wire_bytes;
        if (buffer_[i].enqueued_ns != 0 &&
            buffer_[i].enqueued_ns <= defense_start_ns) {
          entry.queue_wait_us = static_cast<double>(defense_start_ns -
                                                    buffer_[i].enqueued_ns) /
                                1e3;
        }
        entry.scoring_us = defense_us;
        entry.trace_id = buffer_[i].trace_id;
        entry.reason = agg.reason;
        audit.Append(entry);
      }
      // Per-update defense span sharing the update's trace id; this is the
      // server-side half of the cross-process timeline the client's
      // net.worker.train span belongs to.
      if (buffer_[i].trace_id != 0 &&
          obs::TraceRecorder::Global().enabled()) {
        const std::uint64_t trace_id = buffer_[i].trace_id;
        obs::TraceRecorder::Global().Record(
            "defense.process.update", defense_start_ns, defense_end_ns,
            {trace_id, DefenseSpanId(trace_id), TrainSpanId(trace_id)});
      }
    }
    record.mean_staleness =
        staleness_sum / static_cast<double>(buffer_.size());
    record.defense_micros =
        std::chrono::duration_cast<std::chrono::microseconds>(defense_end -
                                                              defense_start)
            .count();
    defense_latency_us.Record(static_cast<double>(record.defense_micros));
    rounds_counter.Increment();

    if (!agg.aggregated_delta.empty()) {
      AF_CHECK_EQ(agg.aggregated_delta.size(), global_->size());
      auto next = std::make_shared<std::vector<float>>(*global_);
      const float lr = static_cast<float>(config_.server_learning_rate);
      for (std::size_t i = 0; i < next->size(); ++i) {
        (*next)[i] += lr * agg.aggregated_delta[i];
      }
      global_ = std::move(next);
    }
    ++round_;
    buffer_ = std::move(agg.deferred);

    if (round_ % config_.eval_every == 0 || round_ == config_.rounds) {
      AF_TRACE_SPAN("eval.accuracy");
      record.test_accuracy =
          EvaluateAccuracy(spec_, *eval_model, *global_, *test_set_);
      AF_LOG(kDebug) << defense_->Name() << " round " << round_
                     << " acc=" << record.test_accuracy;
    }
    registry.GetCounter("sim.updates_accepted", metric_labels)
        .Increment(record.accepted);
    registry.GetCounter("sim.updates_rejected", metric_labels)
        .Increment(record.rejected);
    registry.GetCounter("sim.updates_deferred", metric_labels)
        .Increment(record.deferred);
    registry.GetCounter("sim.updates_dropped_stale", metric_labels)
        .Increment(record.dropped_stale);
    partial_.rounds.push_back(record);

    // Checkpoint hooks — the state is at a clean round boundary here.
    const bool stop_requested =
        checkpoint_.stop != nullptr &&
        checkpoint_.stop->load(std::memory_order_relaxed);
    if (!checkpoint_.path.empty()) {
      const bool periodic = checkpoint_.every > 0 &&
                            round_ % checkpoint_.every == 0 &&
                            round_ < config_.rounds;
      if (stop_requested || periodic) {
        WriteCheckpoint();
      }
    }
    if (stop_requested && round_ < config_.rounds) {
      AF_LOG(kInfo) << "sim: stop requested after round " << round_
                    << (checkpoint_.path.empty()
                            ? "; no checkpoint path configured"
                            : "; checkpoint written");
      interrupted = true;
      break;
    }
  }

  round_gauge.Set(static_cast<double>(round_));
  SimulationResult result = std::move(partial_);
  partial_ = SimulationResult{};
  result.final_model = *global_;
  result.evicted_clients = backend_->ClientCount() - backend_->AliveCount();
  result.interrupted = interrupted;
  FinalizeResult(result);
  return result;
}

namespace {

// RNG engine state round-trips exactly through the standard's text
// representation (decimal integers, no floating point involved).
std::string EncodeRng(const std::mt19937_64& rng) {
  std::ostringstream out;
  out << rng;
  return out.str();
}

void DecodeRng(const std::string& text, std::mt19937_64& rng) {
  std::istringstream in(text);
  in >> rng;
  AF_CHECK(!in.fail()) << "checkpoint: corrupt RNG state";
}

void SaveUpdate(util::serial::Writer& w, const ModelUpdate& update) {
  w.I64(update.client_id);
  w.U64(update.base_round);
  w.U64(update.arrival_round);
  w.U64(update.staleness);
  w.U64(update.num_samples);
  w.U8(update.is_malicious_truth ? 1 : 0);
  w.FloatVec(update.delta);
  // Observability sidecar (checkpoint v2). enqueued_ns is deliberately not
  // saved: a wall-clock queue latency is meaningless across process
  // lifetimes, so restored updates report it as unknown.
  w.U64(update.trace_id);
  w.Str(update.codec);
  w.U64(update.wire_bytes);
}

ModelUpdate LoadUpdate(util::serial::Reader& r) {
  ModelUpdate update;
  update.client_id = static_cast<int>(r.I64());
  update.base_round = r.U64();
  update.arrival_round = r.U64();
  update.staleness = r.U64();
  update.num_samples = r.U64();
  update.is_malicious_truth = r.U8() != 0;
  update.delta = r.FloatVec();
  update.trace_id = r.U64();
  update.codec = r.Str();
  update.wire_bytes = r.U64();
  return update;
}

void SaveRecord(util::serial::Writer& w, const RoundRecord& record) {
  w.U64(record.round);
  w.F64(record.sim_time);
  w.F64(record.test_accuracy);
  w.U64(record.buffered);
  w.U64(record.accepted);
  w.U64(record.rejected);
  w.U64(record.deferred);
  w.U64(record.dropped_stale);
  w.F64(record.mean_staleness);
  w.I64(record.defense_micros);
  w.U64(record.staleness_histogram.size());
  for (const auto& [staleness, count] : record.staleness_histogram) {
    w.U64(staleness);
    w.U64(count);
  }
  w.U64(record.confusion.true_positive);
  w.U64(record.confusion.false_positive);
  w.U64(record.confusion.true_negative);
  w.U64(record.confusion.false_negative);
}

RoundRecord LoadRecord(util::serial::Reader& r) {
  RoundRecord record;
  record.round = r.U64();
  record.sim_time = r.F64();
  record.test_accuracy = r.F64();
  record.buffered = r.U64();
  record.accepted = r.U64();
  record.rejected = r.U64();
  record.deferred = r.U64();
  record.dropped_stale = r.U64();
  record.mean_staleness = r.F64();
  record.defense_micros = r.I64();
  const std::uint64_t histogram_size = r.U64();
  for (std::uint64_t i = 0; i < histogram_size; ++i) {
    const std::size_t staleness = r.U64();
    record.staleness_histogram[staleness] = r.U64();
  }
  record.confusion.true_positive = r.U64();
  record.confusion.false_positive = r.U64();
  record.confusion.true_negative = r.U64();
  record.confusion.false_negative = r.U64();
  return record;
}

}  // namespace

void Simulation::SaveState(util::serial::Writer& w) const {
  // Identity block: LoadState refuses a checkpoint from a different setup.
  w.U64(config_.seed);
  w.U64(config_.rounds);
  w.U64(backend_->ClientCount());
  w.U64(global_->size());
  w.Str(defense_->Name());

  // Scheduler scalars.
  w.U64(round_);
  w.F64(now_);
  w.U64(dropped_this_round_);

  // Model pool: the global model plus every distinct base model still
  // referenced by an in-flight job, deduplicated by identity so shared
  // snapshots serialize once. Parameter payloads use the AFPM framing
  // shared with nn/serialize and the net/ wire protocol — or an AFCZ
  // container when the run compresses checkpoints; LoadState sniffs.
  std::vector<Job> jobs;
  {
    auto queue = events_;  // copies are cheap: jobs share base pointers
    while (!queue.empty()) {
      jobs.push_back(queue.top());
      queue.pop();
    }
  }
  std::vector<const std::vector<float>*> pool;
  std::unordered_map<const void*, std::uint64_t> pool_index;
  pool.push_back(global_.get());
  pool_index[global_.get()] = 0;
  for (const Job& job : jobs) {
    if (pool_index.emplace(job.base.get(), pool.size()).second) {
      pool.push_back(job.base.get());
    }
  }
  w.U64(pool.size());
  for (const std::vector<float>* params : pool) {
    std::vector<std::uint8_t> block;
    if (checkpoint_codec_ != nullptr) {
      compress::AppendEncodedParams(block, *checkpoint_codec_, *params);
    } else {
      nn::AppendFlatParams(block, *params);
    }
    w.U64(block.size());
    w.Raw(block);
  }

  // Event queue (ascending completion time — the queue's pop order).
  w.U64(jobs.size());
  for (const Job& job : jobs) {
    w.F64(job.completion_time);
    w.I64(job.client_id);
    w.U64(job.dispatch_round);
    w.U64(job.job_index);
    w.U64(pool_index.at(job.base.get()));
  }

  // Per-client job counters (RNG stream positions for future jobs).
  w.U64(job_counters_.size());
  for (std::uint64_t counter : job_counters_) {
    w.U64(counter);
  }

  // Long-lived RNG engines.
  w.Str(EncodeRng(participation_rng_));
  w.Str(EncodeRng(server_rng_));

  // Colluder knowledge pool (oldest first).
  const auto window = coordinator_.Window();
  w.U64(window.size());
  for (const auto& update : window) {
    w.FloatVec(update);
  }

  // Deferred buffer carried into the next round.
  w.U64(buffer_.size());
  for (const ModelUpdate& update : buffer_) {
    SaveUpdate(w, update);
  }

  // Round records completed so far.
  w.U64(partial_.rounds.size());
  for (const RoundRecord& record : partial_.rounds) {
    SaveRecord(w, record);
  }

  // Defense cross-round state, length-framed so a defense that reads the
  // wrong byte count fails loudly at the frame boundary.
  util::serial::Writer defense_state;
  defense_->SaveState(defense_state);
  w.U64(defense_state.size());
  w.Raw(defense_state.buffer());
}

void Simulation::LoadState(util::serial::Reader& r) {
  // Identity block.
  const std::uint64_t seed = r.U64();
  const std::uint64_t rounds = r.U64();
  const std::uint64_t client_count = r.U64();
  const std::uint64_t param_count = r.U64();
  const std::string defense_name = r.Str();
  AF_CHECK_EQ(seed, config_.seed) << "checkpoint: seed mismatch";
  AF_CHECK_EQ(rounds, config_.rounds) << "checkpoint: round-count mismatch";
  AF_CHECK_EQ(client_count, backend_->ClientCount())
      << "checkpoint: client-count mismatch";
  AF_CHECK_EQ(param_count, global_->size())
      << "checkpoint: model-size mismatch";
  AF_CHECK_EQ(defense_name, defense_->Name())
      << "checkpoint: defense mismatch";

  round_ = r.U64();
  now_ = r.F64();
  dropped_this_round_ = r.U64();

  // Model pool.
  const std::uint64_t pool_size = r.U64();
  AF_CHECK_GT(pool_size, 0u) << "checkpoint: empty model pool";
  std::vector<std::shared_ptr<const std::vector<float>>> pool;
  pool.reserve(pool_size);
  for (std::uint64_t i = 0; i < pool_size; ++i) {
    const std::uint64_t block_size = r.U64();
    std::span<const std::uint8_t> tail = r.Tail();
    AF_CHECK_LE(block_size, tail.size()) << "checkpoint: truncated model pool";
    std::size_t offset = 0;
    auto params = compress::ParseAnyParams(tail.subspan(0, block_size),
                                           &offset);
    AF_CHECK_EQ(offset, block_size) << "checkpoint: model block trailing bytes";
    AF_CHECK_EQ(params.size(), global_->size())
        << "checkpoint: pooled model size mismatch";
    pool.push_back(
        std::make_shared<const std::vector<float>>(std::move(params)));
    r.Skip(block_size);
  }
  global_ = pool[0];

  // Event queue.
  events_ = decltype(events_){};
  const std::uint64_t num_jobs = r.U64();
  for (std::uint64_t i = 0; i < num_jobs; ++i) {
    Job job;
    job.completion_time = r.F64();
    job.client_id = static_cast<int>(r.I64());
    job.dispatch_round = r.U64();
    job.job_index = r.U64();
    const std::uint64_t base_index = r.U64();
    AF_CHECK_LT(base_index, pool.size()) << "checkpoint: bad base index";
    job.base = pool[base_index];
    events_.push(std::move(job));
  }

  // Job counters.
  const std::uint64_t num_counters = r.U64();
  AF_CHECK_EQ(num_counters, job_counters_.size())
      << "checkpoint: job-counter count mismatch";
  for (auto& counter : job_counters_) {
    counter = r.U64();
  }

  DecodeRng(r.Str(), participation_rng_);
  DecodeRng(r.Str(), server_rng_);

  // Colluder knowledge pool.
  const std::uint64_t window_size = r.U64();
  std::vector<std::vector<float>> window;
  window.reserve(window_size);
  for (std::uint64_t i = 0; i < window_size; ++i) {
    window.push_back(r.FloatVec());
  }
  coordinator_.RestoreWindow(std::move(window));

  // Deferred buffer.
  buffer_.clear();
  const std::uint64_t buffer_size = r.U64();
  buffer_.reserve(buffer_size);
  for (std::uint64_t i = 0; i < buffer_size; ++i) {
    buffer_.push_back(LoadUpdate(r));
  }

  // Completed round records.
  partial_ = SimulationResult{};
  const std::uint64_t num_records = r.U64();
  partial_.rounds.reserve(num_records);
  for (std::uint64_t i = 0; i < num_records; ++i) {
    partial_.rounds.push_back(LoadRecord(r));
  }
  AF_CHECK_EQ(partial_.rounds.size(), round_)
      << "checkpoint: record/round mismatch";

  // Defense state.
  defense_->Reset();
  const std::uint64_t defense_bytes = r.U64();
  std::span<const std::uint8_t> tail = r.Tail();
  AF_CHECK_LE(defense_bytes, tail.size())
      << "checkpoint: truncated defense state";
  util::serial::Reader defense_reader(tail.subspan(0, defense_bytes));
  defense_->LoadState(defense_reader);
  AF_CHECK(defense_reader.AtEnd())
      << "checkpoint: defense state has " << defense_reader.remaining()
      << " unread bytes (Save/Load mismatch in " << defense_->Name() << ")";
  r.Skip(defense_bytes);

  resumed_ = true;
}

}  // namespace fl

#include "fl/simulation.h"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/zipf.h"
#include "util/check.h"
#include "util/logging.h"

namespace fl {

Simulation::Simulation(SimulationConfig config, const nn::ModelSpec& spec,
                       TrainBackend* backend, std::vector<int> malicious_ids,
                       std::unique_ptr<attacks::Attack> attack,
                       std::unique_ptr<defense::Defense> defense,
                       const data::Dataset* test_set, data::Dataset server_root)
    : config_(config),
      spec_(spec),
      backend_(backend),
      attack_(std::move(attack)),
      coordinator_(config.attacker_window),
      defense_(std::move(defense)),
      test_set_(test_set),
      server_root_(std::move(server_root)),
      rngs_(config.seed),
      participation_rng_(rngs_.Stream("participation")) {
  AF_CHECK(backend_ != nullptr);
  malicious_.assign(backend_->ClientCount(), false);
  for (int id : malicious_ids) {
    AF_CHECK_GE(id, 0);
    AF_CHECK_LT(static_cast<std::size_t>(id), malicious_.size());
    malicious_[static_cast<std::size_t>(id)] = true;
  }
  Init();
}

Simulation::Simulation(SimulationConfig config, const nn::ModelSpec& spec,
                       std::vector<std::unique_ptr<Client>> clients,
                       std::vector<int> malicious_ids,
                       std::unique_ptr<attacks::Attack> attack,
                       std::unique_ptr<defense::Defense> defense,
                       const data::Dataset* test_set, data::Dataset server_root,
                       util::ThreadPool* pool)
    : config_(config),
      spec_(spec),
      attack_(std::move(attack)),
      coordinator_(config.attacker_window),
      defense_(std::move(defense)),
      test_set_(test_set),
      server_root_(std::move(server_root)),
      rngs_(config.seed),
      participation_rng_(rngs_.Stream("participation")) {
  AF_CHECK(!clients.empty());
  AF_CHECK(pool != nullptr);
  malicious_.assign(clients.size(), false);
  for (int id : malicious_ids) {
    AF_CHECK_GE(id, 0);
    AF_CHECK_LT(static_cast<std::size_t>(id), malicious_.size());
    malicious_[static_cast<std::size_t>(id)] = true;
  }
  owned_backend_ = std::make_unique<InprocBackend>(std::move(clients), pool,
                                                   config_.seed,
                                                   config_.local);
  backend_ = owned_backend_.get();
  Init();
}

void Simulation::Init() {
  AF_CHECK_GT(backend_->ClientCount(), 0u);
  AF_CHECK_GT(config_.participation, 0.0);
  AF_CHECK_LE(config_.participation, 1.0);
  AF_CHECK_GT(config_.server_learning_rate, 0.0);
  AF_CHECK(attack_ != nullptr);
  AF_CHECK(defense_ != nullptr);
  AF_CHECK(test_set_ != nullptr);
  AF_CHECK_GT(config_.buffer_goal, 0u);
  AF_CHECK_LE(config_.buffer_goal, backend_->ClientCount())
      << "aggregation bound exceeds client count";

  auto latency_rng = rngs_.Stream("latency");
  latencies_ = stats::SampleClientLatencies(backend_->ClientCount(),
                                            config_.zipf_s,
                                            config_.base_latency, latency_rng);
  job_counters_.assign(backend_->ClientCount(), 0);

  // Initial global model.
  auto init = spec_.factory(config_.seed);
  global_ = std::make_shared<const std::vector<float>>(init->GetFlatParams());

  if (defense_->RequiresServerReference()) {
    AF_CHECK_GT(server_root_.size(), 0u)
        << defense_->Name() << " requires a server root dataset";
    std::vector<std::size_t> all(server_root_.size());
    std::iota(all.begin(), all.end(), 0u);
    server_trainer_ = std::make_unique<Client>(-1, &server_root_,
                                               std::move(all), spec_,
                                               config_.seed ^ 0x5eedULL);
  }
}

bool Simulation::IsMalicious(int client_id) const {
  return malicious_[static_cast<std::size_t>(client_id)];
}

std::size_t Simulation::EffectiveGoal() const {
  const std::size_t alive = backend_->AliveCount();
  AF_CHECK_GT(alive, 0u) << "every client disconnected; cannot aggregate";
  return std::min(config_.buffer_goal, alive);
}

void Simulation::Dispatch(int client_id, double now) {
  if (!backend_->IsAlive(client_id)) {
    return;  // evicted clients are no longer scheduled
  }
  const std::size_t idx = static_cast<std::size_t>(client_id);
  double start_delay = 0.0;
  if (config_.participation < 1.0) {
    std::uniform_real_distribution<double> uniform(0.0, 1.0);
    if (uniform(participation_rng_) >= config_.participation) {
      start_delay = latencies_[idx];  // sit out roughly one job's worth
    }
  }
  Job job;
  job.completion_time = now + start_delay + latencies_[idx];
  job.client_id = client_id;
  job.dispatch_round = round_;
  job.job_index = job_counters_[idx]++;
  job.base = global_;
  events_.push(std::move(job));
}

std::vector<float> Simulation::ServerReferenceUpdate() {
  AF_TRACE_SPAN("server.reference");
  AF_CHECK(server_trainer_ != nullptr);
  auto rng = rngs_.Stream("server-reference", round_);
  return server_trainer_->TrainOnce(*global_, config_.local, rng);
}

SimulationResult Simulation::Run() {
  AF_TRACE_SPAN("sim.run");
  SimulationResult result;
  auto server_rng = rngs_.Stream("server-defense");
  auto eval_model = spec_.factory(config_.seed);

  // Run-level metrics; labelled by defense so grid runs stay separable.
  const obs::Labels metric_labels{{"defense", defense_->Name()}};
  obs::MetricsRegistry& registry = obs::DefaultRegistry();
  obs::Histogram& defense_latency_us =
      registry.GetHistogram("defense.latency_us", metric_labels);
  obs::Histogram& staleness_hist =
      registry.GetHistogram("sim.update_staleness", metric_labels,
                            {.first_bound = 1.0, .growth = 2.0,
                             .bucket_count = 12});
  obs::Counter& rounds_counter = registry.GetCounter("sim.rounds",
                                                     metric_labels);

  // Kick off every client (the paper's sampler selects all 100 each round).
  for (std::size_t c = 0; c < backend_->ClientCount(); ++c) {
    Dispatch(static_cast<int>(c), 0.0);
  }

  std::vector<ModelUpdate> buffer;
  double now = 0.0;
  std::size_t dropped_this_round = 0;

  while (round_ < config_.rounds) {
    auto attack_rng = rngs_.Stream("attack", round_);

    // Fill the buffer up to the aggregation bound. Normally one pass; a
    // client evicted mid-batch loses its jobs, so the loop may take another
    // pass over the survivors.
    while (buffer.size() < EffectiveGoal()) {
      const std::size_t goal = EffectiveGoal();
      std::vector<Job> batch;
      while (buffer.size() + batch.size() < goal) {
        AF_CHECK(!events_.empty()) << "event queue drained";
        Job job = events_.top();
        events_.pop();
        now = job.completion_time;
        if (!backend_->IsAlive(job.client_id)) {
          continue;  // job of an evicted client; nothing to re-dispatch
        }
        const std::size_t staleness = round_ - job.dispatch_round;
        Dispatch(job.client_id, now);  // client immediately starts a new job
        if (staleness > config_.staleness_limit) {
          ++dropped_this_round;
          continue;  // server refuses over-stale arrivals without training
        }
        batch.push_back(std::move(job));
      }

      // Local training for all arrivals — thread pool or wire round-trips,
      // depending on the backend.
      std::vector<TrainJob> train_jobs;
      train_jobs.reserve(batch.size());
      for (const Job& job : batch) {
        train_jobs.push_back({job.client_id, job.job_index,
                              job.dispatch_round, job.base});
      }
      const std::vector<std::vector<float>> honest =
          backend_->Train(train_jobs);
      AF_CHECK_EQ(honest.size(), batch.size());

      // Sequential report processing in arrival order (attacker coordination
      // must observe a deterministic order).
      for (std::size_t j = 0; j < batch.size(); ++j) {
        const Job& job = batch[j];
        if (honest[j].empty()) {
          // Client evicted mid-round: aggregate from the survivors.
          AF_LOG(kWarn) << "sim: client " << job.client_id
                        << " lost mid-round " << round_
                        << "; continuing with survivors";
          continue;
        }
        ModelUpdate update;
        update.client_id = job.client_id;
        update.base_round = job.dispatch_round;
        update.arrival_round = round_;
        update.staleness = round_ - job.dispatch_round;
        update.num_samples = backend_->NumSamples(job.client_id);
        if (IsMalicious(job.client_id)) {
          coordinator_.Absorb(honest[j]);
          const auto window = coordinator_.Window();
          attacks::AttackContext ctx;
          ctx.honest_update = honest[j];
          ctx.colluder_updates = &window;
          ctx.rng = &attack_rng;
          update.delta = attack_->Craft(ctx);
          update.is_malicious_truth = true;
        } else {
          update.delta = honest[j];
        }
        buffer.push_back(std::move(update));
      }
    }

    AF_CHECK_GE(buffer.size(), EffectiveGoal());

    // Refresh staleness of deferred leftovers and drop over-stale ones.
    std::vector<ModelUpdate> live;
    live.reserve(buffer.size());
    for (auto& update : buffer) {
      update.staleness = round_ - update.base_round;
      update.arrival_round = round_;
      if (update.staleness > config_.staleness_limit) {
        ++dropped_this_round;
        continue;
      }
      live.push_back(std::move(update));
    }
    buffer.swap(live);
    if (buffer.empty()) {
      continue;  // everything went stale; keep collecting
    }

    if (observer_) {
      observer_(round_, buffer);
    }

    // Defense + aggregation.
    defense::FilterContext ctx;
    ctx.round = round_;
    ctx.global_model = *global_;
    ctx.max_staleness = config_.staleness_limit;
    ctx.staleness_weighting = config_.staleness_weighting;
    ctx.rng = &server_rng;
    std::vector<float> server_ref;
    if (defense_->RequiresServerReference()) {
      server_ref = ServerReferenceUpdate();
      ctx.server_reference = server_ref;
    }
    const auto defense_start = std::chrono::steady_clock::now();
    defense::AggregationResult agg;
    {
      AF_TRACE_SPAN("defense.process");
      agg = defense_->Process(ctx, buffer);
    }
    const auto defense_end = std::chrono::steady_clock::now();
    AF_CHECK_EQ(agg.verdicts.size(), buffer.size());

    RoundRecord record;
    record.round = round_;
    record.sim_time = now;
    record.buffered = buffer.size();
    record.dropped_stale = dropped_this_round;
    dropped_this_round = 0;
    double staleness_sum = 0.0;
    for (std::size_t i = 0; i < buffer.size(); ++i) {
      staleness_sum += static_cast<double>(buffer[i].staleness);
      ++record.staleness_histogram[buffer[i].staleness];
      staleness_hist.Record(static_cast<double>(buffer[i].staleness));
      const bool rejected = agg.verdicts[i] == defense::Verdict::kRejected;
      const bool malicious = buffer[i].is_malicious_truth;
      if (rejected) {
        ++record.rejected;
        if (malicious) {
          ++record.confusion.true_positive;
        } else {
          ++record.confusion.false_positive;
        }
      } else {
        if (agg.verdicts[i] == defense::Verdict::kDeferred) {
          ++record.deferred;
        } else {
          ++record.accepted;
        }
        if (malicious) {
          ++record.confusion.false_negative;
        } else {
          ++record.confusion.true_negative;
        }
      }
    }
    record.mean_staleness =
        staleness_sum / static_cast<double>(buffer.size());
    record.defense_micros =
        std::chrono::duration_cast<std::chrono::microseconds>(defense_end -
                                                              defense_start)
            .count();
    defense_latency_us.Record(static_cast<double>(record.defense_micros));
    rounds_counter.Increment();

    if (!agg.aggregated_delta.empty()) {
      AF_CHECK_EQ(agg.aggregated_delta.size(), global_->size());
      auto next = std::make_shared<std::vector<float>>(*global_);
      const float lr = static_cast<float>(config_.server_learning_rate);
      for (std::size_t i = 0; i < next->size(); ++i) {
        (*next)[i] += lr * agg.aggregated_delta[i];
      }
      global_ = std::move(next);
    }
    ++round_;
    buffer = std::move(agg.deferred);

    if (round_ % config_.eval_every == 0 || round_ == config_.rounds) {
      AF_TRACE_SPAN("eval.accuracy");
      record.test_accuracy =
          EvaluateAccuracy(spec_, *eval_model, *global_, *test_set_);
      AF_LOG(kDebug) << defense_->Name() << " round " << round_
                     << " acc=" << record.test_accuracy;
    }
    registry.GetCounter("sim.updates_accepted", metric_labels)
        .Increment(record.accepted);
    registry.GetCounter("sim.updates_rejected", metric_labels)
        .Increment(record.rejected);
    registry.GetCounter("sim.updates_deferred", metric_labels)
        .Increment(record.deferred);
    registry.GetCounter("sim.updates_dropped_stale", metric_labels)
        .Increment(record.dropped_stale);
    result.rounds.push_back(record);
  }

  result.final_model = *global_;
  result.evicted_clients = backend_->ClientCount() - backend_->AliveCount();
  FinalizeResult(result);
  return result;
}

}  // namespace fl

#include "fl/distributed.h"

#include <poll.h>

#include <algorithm>
#include <chrono>
#include <deque>
#include <map>
#include <thread>
#include <utility>

#include "compress/codec.h"
#include "fl/trace_context.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/arena.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/rng.h"

namespace fl {
namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

void SleepMs(double ms) {
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

// How long an idle worker waits for its next job before assuming the server
// died without saying Shutdown. Slow clients legitimately idle across many
// aggregation rounds, so this is generous.
constexpr int kWorkerIdleTimeoutMs = 10 * 60 * 1000;

// ---------------------------------------------------------------------
// Client worker: one thread per client, blocking I/O over loopback TCP.

struct WorkerContext {
  int client_id = -1;
  Client* client = nullptr;
  std::uint64_t seed = 0;
  LocalTrainConfig local;
  std::uint16_t port = 0;
  TransportOptions options;
};

// The worker's data path: frames go over the socket until a ShmSelect{true}
// was sent, then over the segment's rings (the socket stays open purely as
// the liveness signal — readability after activation means EOF).
struct WorkerLink {
  net::Connection* conn = nullptr;
  net::ShmSegment* shm = nullptr;  // non-null once rings are active
  std::vector<std::uint8_t> ring_in;  // undecoded downlink-ring bytes

  void SendFrameBytes(std::span<const std::uint8_t> bytes, int timeout_ms) {
    if (shm != nullptr) {
      AF_CHECK(shm->uplink().WriteAll(bytes, timeout_ms))
          << "shm uplink write timed out";
      return;
    }
    conn->SendBytes(bytes, timeout_ms);
  }

  net::Connection::RecvStatus TryRecvFrame(net::Frame* out, int timeout_ms) {
    if (shm == nullptr) {
      return conn->TryRecvFrame(out, timeout_ms);
    }
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(
                           timeout_ms < 0 ? kWorkerIdleTimeoutMs : timeout_ms);
    while (true) {
      net::FrameView view;
      const std::size_t consumed = net::DecodeFrameView(ring_in, &view);
      if (consumed != 0) {
        out->type = view.type;
        out->payload.assign(view.payload.begin(), view.payload.end());
        ring_in.erase(ring_in.begin(),
                      ring_in.begin() + static_cast<std::ptrdiff_t>(consumed));
        return net::Connection::RecvStatus::kFrame;
      }
      if (shm->downlink().ReadSome(ring_in) > 0) {
        continue;
      }
      pollfd pfd{conn->fd(), POLLIN, 0};
      if (::poll(&pfd, 1, 0) > 0 &&
          (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        return net::Connection::RecvStatus::kEof;
      }
      const auto left =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                Clock::now())
              .count();
      if (left <= 0) {
        return net::Connection::RecvStatus::kTimeout;
      }
      // Short futex sleeps so the EOF poll above stays responsive.
      shm->downlink().WaitReadable(
          static_cast<int>(std::min<long long>(left, 50)));
    }
  }

  bool RecvFrame(net::Frame* out, int timeout_ms) {
    const auto status = TryRecvFrame(out, timeout_ms);
    AF_CHECK(status != net::Connection::RecvStatus::kTimeout)
        << "recv deadline elapsed";
    return status == net::Connection::RecvStatus::kFrame;
  }
};

// Sends the pre-encoded update frame through the fault injector and waits
// for the server's Ack, resending on the retry schedule. Resends reuse the
// same bytes, so retries stay byte-identical. Returns false when the worker
// must die (connection intentionally killed, truncated, or the server never
// acked). Broadcast frames that arrive while waiting are parked in `inbox`.
bool SendUpdateReliably(const WorkerContext& ctx, WorkerLink& link,
                        net::FaultInjector& injector,
                        std::span<const std::uint8_t> update_bytes,
                        std::uint64_t job_index,
                        std::deque<net::Frame>& inbox,
                        std::uint64_t& data_frames_sent,
                        net::BackoffSchedule& backoff, bool& saw_shutdown) {
  obs::Counter& resends =
      obs::DefaultRegistry().GetCounter("net.update_resends");
  obs::Counter& faults = obs::DefaultRegistry().GetCounter(
      "net.faults_injected", {{"kind", "any"}});
  const bool inject = ctx.options.faults.Any();
  // Each job is a fresh retry cycle; the schedule's RNG keeps advancing
  // across cycles so repeated cycles stay decorrelated.
  backoff.Reset();

  for (int attempt = 0; attempt < ctx.options.retry.max_attempts; ++attempt) {
    if (attempt > 0) {
      resends.Increment();
      SleepMs(backoff.NextDelayMs());
    }
    // Doomed connections die after their allotted number of data frames.
    if (injector.doomed() && data_frames_sent >= injector.kill_after_frame()) {
      AF_LOG(kInfo) << "net: fault injector killing client "
                    << ctx.client_id << "'s connection";
      link.conn->Close();
      return false;
    }
    auto action = net::FaultInjector::Action::kDeliver;
    if (inject) {
      action = injector.NextAction();
      if (action != net::FaultInjector::Action::kDeliver) {
        faults.Increment();
      }
    }
    ++data_frames_sent;
    switch (action) {
      case net::FaultInjector::Action::kDrop:
        break;  // never hits the wire; the ack timeout triggers a resend
      case net::FaultInjector::Action::kTruncate:
        // A frame prefix then a hard close: the server sees a stream that
        // dies mid-frame and evicts us. (Faulted workers never activate
        // shm, so this always acts on the real socket.)
        link.conn->SendBytes(update_bytes.first(update_bytes.size() / 2),
                             ctx.options.io_timeout_ms);
        link.conn->Close();
        return false;
      case net::FaultInjector::Action::kDelay:
        SleepMs(injector.delay_ms());
        link.SendFrameBytes(update_bytes, ctx.options.io_timeout_ms);
        break;
      case net::FaultInjector::Action::kDuplicate:
        link.SendFrameBytes(update_bytes, ctx.options.io_timeout_ms);
        link.SendFrameBytes(update_bytes, ctx.options.io_timeout_ms);
        break;
      case net::FaultInjector::Action::kDeliver:
        link.SendFrameBytes(update_bytes, ctx.options.io_timeout_ms);
        break;
    }

    // Await the receipt; anything else that arrives is parked.
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(ctx.options.ack_timeout_ms);
    while (true) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - Clock::now())
                            .count();
      if (left <= 0) {
        break;  // resend
      }
      net::Frame in;
      const auto status = link.TryRecvFrame(&in, static_cast<int>(left));
      if (status == net::Connection::RecvStatus::kTimeout) {
        break;  // resend
      }
      if (status == net::Connection::RecvStatus::kEof) {
        return false;  // server closed on us
      }
      if (in.type == net::MessageType::kAck) {
        if (net::DecodeAck(in).value == job_index) {
          return true;
        }
        continue;  // stale receipt for an earlier job
      }
      if (in.type == net::MessageType::kShutdown) {
        saw_shutdown = true;
        return true;  // run is over; the update no longer matters
      }
      inbox.push_back(std::move(in));
    }
  }
  AF_LOG(kWarn) << "net: client " << ctx.client_id << " gave up on job "
                << job_index << " after "
                << ctx.options.retry.max_attempts << " attempts";
  link.conn->Close();
  return false;
}

void RunWorker(WorkerContext ctx) {
  util::SetThreadLogPrefix("client " + std::to_string(ctx.client_id));
  try {
    net::FaultInjector injector(ctx.options.faults, ctx.client_id);
    // Decorrelated-jitter resend schedule, seeded per client so a fleet
    // that stalls together fans back out instead of resending in lockstep.
    net::BackoffSchedule backoff(
        ctx.options.retry,
        ctx.seed ^ (0xc0ffee123ull +
                    static_cast<std::uint64_t>(ctx.client_id)));

    net::Connection conn = net::ConnectWithRetry(
        ctx.port, ctx.options.retry,
        ctx.seed ^ static_cast<std::uint64_t>(ctx.client_id));
    // Handshake: identify ourselves.
    conn.SendFrame(net::EncodeAck(
                       {static_cast<std::uint64_t>(ctx.client_id)}),
                   ctx.options.io_timeout_ms);

    // Training jobs draw from the same streams as the in-process backend,
    // which is what makes tcp and inproc runs bit-identical.
    util::RngFactory rngs(ctx.seed);
    std::deque<net::Frame> inbox;
    std::uint64_t data_frames_sent = 0;
    bool saw_shutdown = false;
    // Negotiated uplink codec. Stays null — legacy identity bytes — until a
    // CodecOffer arrives; an old server never sends one, so its first frame
    // (a ModelBroadcast) lands below and the run proceeds uncompressed.
    const compress::Codec* codec = nullptr;
    compress::FeedbackState feedback;
    std::unique_ptr<net::ShmSegment> shm;
    WorkerLink link;
    link.conn = &conn;
    std::vector<std::uint8_t> update_bytes;  // reused per-job encode scratch

    while (!saw_shutdown) {
      net::Frame frame;
      if (!inbox.empty()) {
        frame = std::move(inbox.front());
        inbox.pop_front();
      } else if (!link.RecvFrame(&frame, kWorkerIdleTimeoutMs)) {
        break;  // server closed the connection
      }
      if (frame.type == net::MessageType::kShutdown) {
        break;
      }
      if (frame.type == net::MessageType::kTraceOffer) {
        net::DecodeTraceOffer(frame);
        conn.SendFrame(
            net::EncodeTraceSelect({ctx.options.trace_context}),
            ctx.options.io_timeout_ms);
        continue;
      }
      if (frame.type == net::MessageType::kShmOffer) {
        const net::ShmOfferMsg offer = net::DecodeShmOffer(frame);
        bool mapped = false;
        // Fault injection acts on the socket (truncate, kill); a faulted
        // worker that moved its data frames onto rings would make those
        // faults meaningless, so it declines and stays on TCP.
        if (!ctx.options.faults.Any()) {
          try {
            shm = net::ShmSegment::Open(
                offer.name, static_cast<std::size_t>(offer.ring_bytes));
            mapped = true;
          } catch (const util::CheckError& e) {
            AF_LOG(kWarn) << "net: shm segment " << offer.name
                          << " rejected (" << e.what()
                          << "); staying on TCP";
          }
        }
        conn.SendFrame(net::EncodeShmSelect({mapped}),
                       ctx.options.io_timeout_ms);
        if (mapped) {
          link.shm = shm.get();  // all data frames ride the rings from here
        }
        continue;
      }
      if (frame.type == net::MessageType::kCodecOffer) {
        // Pick the first offered codec this build knows; identity otherwise.
        const net::CodecOfferMsg offer = net::DecodeCodecOffer(frame);
        std::string pick = "identity";
        for (const std::string& name : offer.codecs) {
          if (compress::Has(name)) {
            pick = name;
            break;
          }
        }
        conn.SendFrame(net::EncodeCodecSelect({pick}),
                       ctx.options.io_timeout_ms);
        const compress::Codec& selected = compress::Get(pick);
        codec = compress::IsIdentity(selected) ? nullptr : &selected;
        continue;
      }
      if (frame.type != net::MessageType::kModelBroadcast) {
        continue;  // stray ack from a resolved resend race
      }
      const net::ModelBroadcastMsg job = net::DecodeModelBroadcast(frame);
      const std::uint64_t stream_index =
          (static_cast<std::uint64_t>(ctx.client_id) << 32) | job.job_index;
      auto rng = rngs.Stream("client-train", stream_index);
      net::ClientUpdateMsg update;
      update.client_id = ctx.client_id;
      update.job_index = job.job_index;
      update.base_round = job.round;
      update.num_samples = ctx.client->num_samples();
      // Echo the broadcast's trace id; the train span below and the
      // server's defense span share it, which is the join key
      // tools/merge_traces.py stitches timelines on.
      update.trace_id = job.trace_id;
      update.parent_span_id = TrainSpanId(job.trace_id);
      {
        obs::ScopedSpan span(
            "net.worker.train",
            job.trace_id == 0
                ? obs::TraceContext{}
                : obs::TraceContext{job.trace_id, TrainSpanId(job.trace_id),
                                    job.parent_span_id});
        update.delta = ctx.client->TrainOnce(job.params, ctx.local, rng);
      }
      // Encode exactly once per job, straight into the reused scratch
      // buffer — resends reuse the same bytes, so retries stay
      // byte-identical and the feedback residual advances once.
      update_bytes.clear();
      net::AppendClientUpdateFrame(update_bytes, update, codec, &feedback);
      if (!SendUpdateReliably(ctx, link, injector, update_bytes,
                              job.job_index, inbox, data_frames_sent,
                              backoff, saw_shutdown)) {
        return;
      }
    }
  } catch (const std::exception& e) {
    AF_LOG(kWarn) << "net: worker for client " << ctx.client_id
                  << " terminated: " << e.what();
  }
}

// ---------------------------------------------------------------------
// TcpBackend: executes the simulator's training batches over the wire.

class TcpBackend : public TrainBackend {
 public:
  TcpBackend(net::Server* server, std::vector<std::size_t> num_samples,
             const TransportOptions& options, std::uint64_t seed)
      : server_(server),
        num_samples_(std::move(num_samples)),
        alive_(num_samples_.size(), true),
        alive_count_(num_samples_.size()),
        options_(options),
        seed_(seed),
        rtt_us_(obs::DefaultRegistry().GetHistogram("net.job_rtt_us")),
        combine_us_(
            obs::DefaultRegistry().GetHistogram("shard.combine_us")) {
    // Per-shard staging: updates land in the buffer of the reactor shard
    // whose connection delivered them, and a single combine pass after the
    // wait loop folds every shard into the round's delta slots — the first
    // cut of a sharded aggregation path. Positions are unique per job, so
    // the combine order never affects results.
    const int shards = std::max(1, server_->reactor_shards());
    staging_.resize(static_cast<std::size_t>(shards));
    shard_updates_.reserve(static_cast<std::size_t>(shards));
    for (int s = 0; s < shards; ++s) {
      shard_updates_.push_back(&obs::DefaultRegistry().GetCounter(
          "shard.updates", {{"shard", std::to_string(s)}}));
    }
    server_->SetUpdateHandler(
        [this](int client_id, net::ClientUpdateMsg msg) {
          OnUpdate(client_id, std::move(msg));
        });
    server_->SetDisconnectHandler(
        [this](int client_id) { OnDisconnect(client_id); });
  }

  // The server outlives the backend (the driver polls it again during
  // shutdown); the handlers must not.
  ~TcpBackend() override {
    server_->SetUpdateHandler(nullptr);
    server_->SetDisconnectHandler(nullptr);
  }

  std::vector<net::UpdateView> Train(
      const std::vector<TrainJob>& jobs) override {
    AF_TRACE_SPAN("net.backend.train");
    std::vector<net::UpdateView> deltas(jobs.size());
    current_deltas_ = &deltas;
    outstanding_.clear();

    for (std::size_t j = 0; j < jobs.size(); ++j) {
      const TrainJob& job = jobs[j];
      if (!alive_[static_cast<std::size_t>(job.client_id)]) {
        continue;  // lost between scheduling and training
      }
      net::ModelBroadcastMsg msg;
      msg.round = job.dispatch_round;
      msg.job_index = job.job_index;
      // Borrowed view over the shared base — the encoder reads it in place,
      // no per-job copy of the model.
      msg.params = net::UpdateView(std::span<const float>(*job.base),
                                   job.base);
      // Multiplexed sessions need the AFVC block to demux the job;
      // single-client sessions keep the legacy wire bytes.
      if (server_->IsMultiplexed(job.client_id)) {
        msg.client_id = job.client_id;
      }
      if (options_.trace_context &&
          server_->ClientTraceContext(job.client_id)) {
        msg.trace_id = TraceIdFor(seed_, job.client_id, job.job_index);
        msg.parent_span_id = DispatchSpanId(msg.trace_id);
      }
      // Downlink codec: the client's negotiated pick when it can carry full
      // params; identity (legacy bytes) for delta-only codecs.
      const compress::Codec* codec = server_->ClientCodec(job.client_id);
      if (codec != nullptr && !codec->broadcast_safe()) {
        codec = nullptr;
      }
      if (!server_->SendTo(job.client_id,
                           net::EncodeModelBroadcast(msg, codec))) {
        MarkDead(job.client_id);
        continue;
      }
      outstanding_[{job.client_id, job.job_index}] = {j, NowNs()};
    }

    const auto deadline =
        Clock::now() + std::chrono::milliseconds(options_.job_timeout_ms);
    while (!outstanding_.empty() && Clock::now() < deadline) {
      server_->PollOnce(20);
    }
    // Anyone still silent blew the job deadline: cut them loose.
    std::vector<int> laggards;
    for (const auto& [key, value] : outstanding_) {
      laggards.push_back(key.first);
    }
    for (int client_id : laggards) {
      server_->Evict(client_id, "job deadline exceeded");
    }
    // Push out any still-queued acks so workers stop resending while the
    // driver is busy aggregating/evaluating.
    server_->Flush(options_.io_timeout_ms);
    CombineShards(deltas);
    current_deltas_ = nullptr;
    return deltas;
  }

  std::size_t ClientCount() const override { return num_samples_.size(); }
  std::size_t NumSamples(int client_id) const override {
    return num_samples_[static_cast<std::size_t>(client_id)];
  }
  bool IsAlive(int client_id) const override {
    return alive_[static_cast<std::size_t>(client_id)];
  }
  std::size_t AliveCount() const override { return alive_count_; }

  WireStats UpdateWireStats(int client_id,
                            std::uint64_t job_index) const override {
    auto it = wire_stats_.find({client_id, job_index});
    return it == wire_stats_.end() ? WireStats{} : it->second;
  }

 private:
  struct Pending {
    std::size_t position = 0;
    std::uint64_t sent_ns = 0;
  };

  void MarkDead(int client_id) {
    const auto idx = static_cast<std::size_t>(client_id);
    if (alive_[idx]) {
      alive_[idx] = false;
      --alive_count_;
    }
    for (auto it = outstanding_.begin(); it != outstanding_.end();) {
      it = it->first.first == client_id ? outstanding_.erase(it)
                                        : std::next(it);
    }
  }

  void OnUpdate(int client_id, net::ClientUpdateMsg msg) {
    auto it = outstanding_.find({client_id, msg.job_index});
    if (it == outstanding_.end()) {
      return;  // late copy of an already-settled job
    }
    AF_CHECK_EQ(msg.num_samples, NumSamples(client_id))
        << "client " << client_id << " reported inconsistent sample count";
    rtt_us_.Record(static_cast<double>(NowNs() - it->second.sent_ns) / 1e3);
    AF_CHECK(current_deltas_ != nullptr);
    const compress::Codec* codec = server_->ClientCodec(client_id);
    wire_stats_[{client_id, msg.job_index}] = {
        codec != nullptr ? codec->name() : "identity", msg.wire_bytes};
    // Stage into the reactor shard the update arrived on. The delta either
    // owns its floats already (lossy decode materialized them) or aliases
    // the connection's read buffer, which dies when this callback returns —
    // that one gets the single counted uplink copy, into the arena.
    const int shard = std::max(0, server_->ShardOfClient(client_id));
    auto& slot = staging_[static_cast<std::size_t>(shard) % staging_.size()];
    shard_updates_[static_cast<std::size_t>(shard) % shard_updates_.size()]
        ->Increment();
    if (msg.delta.has_keepalive()) {
      slot.emplace_back(it->second.position, std::move(msg.delta));
    } else {
      obs::DefaultRegistry()
          .GetCounter("transport.bytes_copied")
          .Increment(static_cast<std::uint64_t>(msg.delta.size()) *
                     sizeof(float));
      slot.emplace_back(it->second.position,
                        net::UpdateView::CopyToArena(arena_, msg.delta));
    }
    outstanding_.erase(it);
  }

  // Folds every shard's staged updates into the round's delta slots. Each
  // job position appears at most once across all shards, so this is
  // order-independent — shard count never changes results.
  void CombineShards(std::vector<net::UpdateView>& deltas) {
    const auto begin = Clock::now();
    for (auto& shard : staging_) {
      for (auto& [position, view] : shard) {
        deltas[position] = std::move(view);
      }
      shard.clear();
    }
    combine_us_.Record(
        std::chrono::duration<double, std::micro>(Clock::now() - begin)
            .count());
  }

  void OnDisconnect(int client_id) { MarkDead(client_id); }

  net::Server* server_;
  std::vector<std::size_t> num_samples_;
  std::vector<bool> alive_;
  std::size_t alive_count_ = 0;
  TransportOptions options_;
  std::uint64_t seed_ = 0;
  obs::Histogram& rtt_us_;
  obs::Histogram& combine_us_;
  std::vector<obs::Counter*> shard_updates_;
  std::map<std::pair<int, std::uint64_t>, Pending> outstanding_;
  std::map<std::pair<int, std::uint64_t>, WireStats> wire_stats_;
  // Per-reactor-shard staging buffers: (delta position, update) pairs
  // collected by OnUpdate and folded by CombineShards.
  std::vector<std::vector<std::pair<std::size_t, net::UpdateView>>> staging_;
  // Uplink deltas materialize here; blocks free themselves once the last
  // view into them dies (end of the aggregation round, typically).
  util::Arena arena_;
  std::vector<net::UpdateView>* current_deltas_ = nullptr;
};

}  // namespace

// ---------------------------------------------------------------------
// Driver

struct DistributedDriver::Impl {
  DistributedSpec spec;

  std::unique_ptr<net::Server> server;
  std::vector<std::thread> workers;        // kReal fleet
  std::unique_ptr<VirtualClientPool> pool; // kVirtual fleet

  void ShutdownFleet() {
    if (server != nullptr) {
      server->BroadcastShutdown();
      server->Flush(1000);
    }
    for (auto& worker : workers) {
      if (worker.joinable()) {
        worker.join();
      }
    }
    workers.clear();
    if (pool != nullptr) {
      pool->Stop();
      pool.reset();
    }
    // Fleet sockets are closed now; drop the server so a second call (the
    // destructor's) cannot re-broadcast shutdown into dead connections.
    server.reset();
  }
};

DistributedDriver::DistributedDriver(DistributedSpec spec)
    : impl_(std::make_unique<Impl>()) {
  impl_->spec = std::move(spec);
  AF_CHECK(!impl_->spec.clients.empty());
}

DistributedDriver::~DistributedDriver() {
  try {
    impl_->ShutdownFleet();
  } catch (...) {
    // Destructor must not throw; workers exit on their idle timeout.
  }
}

SimulationResult DistributedDriver::Run() {
  AF_TRACE_SPAN("net.driver.run");
  Impl& impl = *impl_;
  DistributedSpec& spec = impl.spec;
  const bool virtual_fleet =
      spec.pool.mode == ClientPoolSpec::Mode::kVirtual;
  if (virtual_fleet) {
    // Virtual clients send each update exactly once (no resend machinery),
    // so fault injection would silently lose updates instead of testing
    // recovery — force the real fleet for fault experiments.
    AF_CHECK(!spec.transport.faults.Any())
        << "fault injection requires the real (thread-per-client) fleet";
  }

  // Resolve AF_LOG_LEVEL before any worker thread exists so every thread
  // sees the same level from its first line, and tag the driver's own lines.
  util::GetLogLevel();
  util::SetThreadLogPrefix("server");

  net::ServerOptions server_options;
  server_options.port = spec.transport.port;
  server_options.io_timeout_ms = spec.transport.io_timeout_ms;
  server_options.reactor_shards = spec.transport.reactor_shards;
  server_options.offer_trace_context = spec.transport.trace_context;
  server_options.offer_shm = spec.transport.shm;
  server_options.shm_ring_bytes = spec.transport.shm_ring_bytes;
  if (!spec.transport.codec.empty()) {
    // Validate the name up front (throws with the known-codec list) and
    // advertise it; clients pick it during their handshake.
    compress::Get(spec.transport.codec);
    server_options.advertised_codecs = {spec.transport.codec};
  }
  impl.server = std::make_unique<net::Server>(server_options);
  AF_LOG(kInfo) << "net: server listening on 127.0.0.1:"
                << impl.server->port() << " ("
                << impl.server->reactor_backend() << ", "
                << impl.server->reactor_shards() << " shard(s))";

  std::vector<std::size_t> num_samples;
  num_samples.reserve(spec.clients.size());
  for (const auto& client : spec.clients) {
    num_samples.push_back(client->num_samples());
  }

  if (virtual_fleet) {
    // The pool trains with the same (client_id, job_index)-keyed streams
    // the thread-per-client workers use; Stream() is const, so the shared
    // factory is safe across the engine's worker crew.
    std::vector<Client*> fleet;
    fleet.reserve(spec.clients.size());
    for (const auto& client : spec.clients) {
      fleet.push_back(client.get());
    }
    auto rngs = std::make_shared<util::RngFactory>(spec.sim.seed);
    const LocalTrainConfig local = spec.sim.local;

    VirtualPoolOptions pool_options;
    pool_options.port = impl.server->port();
    pool_options.num_clients = static_cast<int>(spec.clients.size());
    pool_options.connections = spec.pool.connections;
    pool_options.workers = spec.pool.workers;
    pool_options.io_timeout_ms = spec.transport.io_timeout_ms;
    pool_options.trace_context = spec.transport.trace_context;
    pool_options.retry = spec.transport.retry;
    pool_options.seed = spec.sim.seed;
    pool_options.latency = spec.pool.latency;
    impl.pool = std::make_unique<VirtualClientPool>(
        pool_options,
        [fleet, rngs, local](const VirtualJob& job) {
          const std::uint64_t stream_index =
              (static_cast<std::uint64_t>(job.client_id) << 32) |
              job.job_index;
          auto rng = rngs->Stream("client-train", stream_index);
          return fleet[static_cast<std::size_t>(job.client_id)]->TrainOnce(
              std::span<const float>(job.base), local, rng);
        },
        [fleet](int client_id) {
          return static_cast<std::uint64_t>(
              fleet[static_cast<std::size_t>(client_id)]->num_samples());
        });
    impl.pool->Start();
    AF_LOG(kInfo) << "net: virtual pool up — " << spec.clients.size()
                  << " clients over " << impl.pool->connection_count()
                  << " connection(s), " << impl.pool->worker_count()
                  << " worker(s)";
  } else {
    for (std::size_t c = 0; c < spec.clients.size(); ++c) {
      WorkerContext ctx;
      ctx.client_id = static_cast<int>(c);
      ctx.client = spec.clients[c].get();
      ctx.seed = spec.sim.seed;
      ctx.local = spec.sim.local;
      ctx.port = impl.server->port();
      ctx.options = spec.transport;
      impl.workers.emplace_back(RunWorker, std::move(ctx));
    }
  }

  SimulationResult result;
  try {
    AF_CHECK(impl.server->WaitForClients(
        spec.clients.size(), spec.transport.handshake_timeout_ms))
        << "only " << impl.server->ConnectedCount() << " of "
        << spec.clients.size() << " clients completed the handshake";

    TcpBackend backend(impl.server.get(), std::move(num_samples),
                       spec.transport, spec.sim.seed);
    ExperimentSpec sim_spec;
    sim_spec.sim = spec.sim;
    sim_spec.model = spec.model;
    sim_spec.backend = &backend;
    sim_spec.malicious_ids = spec.malicious_ids;
    sim_spec.attack = std::move(spec.attack);
    sim_spec.defense = std::move(spec.defense);
    sim_spec.test_set = spec.test_set;
    sim_spec.server_root = std::move(spec.server_root);
    Simulation simulation(std::move(sim_spec));
    result = simulation.Run();
  } catch (...) {
    impl.ShutdownFleet();
    util::SetThreadLogPrefix("");
    throw;
  }
  impl.ShutdownFleet();
  util::SetThreadLogPrefix("");
  return result;
}

}  // namespace fl

#include "fl/distributed.h"

#include <poll.h>

#include <algorithm>
#include <chrono>
#include <deque>
#include <map>
#include <thread>
#include <utility>

#include "compress/codec.h"
#include "fl/trace_context.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/arena.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/rng.h"

namespace fl {
namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

void SleepMs(double ms) {
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

// How long an idle worker waits for its next job before assuming the server
// died without saying Shutdown. Slow clients legitimately idle across many
// aggregation rounds, so this is generous.
constexpr int kWorkerIdleTimeoutMs = 10 * 60 * 1000;

// ---------------------------------------------------------------------
// Client worker: one thread per client, blocking I/O over loopback TCP.

struct WorkerContext {
  int client_id = -1;
  Client* client = nullptr;
  std::uint64_t seed = 0;
  LocalTrainConfig local;
  std::uint16_t port = 0;
  TransportOptions options;
};

// The worker's data path: frames go over the socket until a ShmSelect{true}
// was sent, then over the segment's rings (the socket stays open purely as
// the liveness signal — readability after activation means EOF).
struct WorkerLink {
  net::Connection* conn = nullptr;
  net::ShmSegment* shm = nullptr;  // non-null once rings are active
  std::vector<std::uint8_t> ring_in;  // undecoded downlink-ring bytes

  void SendFrameBytes(std::span<const std::uint8_t> bytes, int timeout_ms) {
    if (shm != nullptr) {
      AF_CHECK(shm->uplink().WriteAll(bytes, timeout_ms))
          << "shm uplink write timed out";
      return;
    }
    conn->SendBytes(bytes, timeout_ms);
  }

  net::Connection::RecvStatus TryRecvFrame(net::Frame* out, int timeout_ms) {
    if (shm == nullptr) {
      return conn->TryRecvFrame(out, timeout_ms);
    }
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(
                           timeout_ms < 0 ? kWorkerIdleTimeoutMs : timeout_ms);
    while (true) {
      net::FrameView view;
      const std::size_t consumed = net::DecodeFrameView(ring_in, &view);
      if (consumed != 0) {
        out->type = view.type;
        out->payload.assign(view.payload.begin(), view.payload.end());
        ring_in.erase(ring_in.begin(),
                      ring_in.begin() + static_cast<std::ptrdiff_t>(consumed));
        return net::Connection::RecvStatus::kFrame;
      }
      if (shm->downlink().ReadSome(ring_in) > 0) {
        continue;
      }
      pollfd pfd{conn->fd(), POLLIN, 0};
      if (::poll(&pfd, 1, 0) > 0 &&
          (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        return net::Connection::RecvStatus::kEof;
      }
      const auto left =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                Clock::now())
              .count();
      if (left <= 0) {
        return net::Connection::RecvStatus::kTimeout;
      }
      // Short futex sleeps so the EOF poll above stays responsive.
      shm->downlink().WaitReadable(
          static_cast<int>(std::min<long long>(left, 50)));
    }
  }

  bool RecvFrame(net::Frame* out, int timeout_ms) {
    const auto status = TryRecvFrame(out, timeout_ms);
    AF_CHECK(status != net::Connection::RecvStatus::kTimeout)
        << "recv deadline elapsed";
    return status == net::Connection::RecvStatus::kFrame;
  }
};

// Sends the pre-encoded update frame through the fault injector and waits
// for the server's Ack, resending on the retry schedule. Resends reuse the
// same bytes, so retries stay byte-identical. Returns false when the worker
// must die (connection intentionally killed, truncated, or the server never
// acked). Broadcast frames that arrive while waiting are parked in `inbox`.
bool SendUpdateReliably(const WorkerContext& ctx, WorkerLink& link,
                        net::FaultInjector& injector,
                        std::span<const std::uint8_t> update_bytes,
                        std::uint64_t job_index,
                        std::deque<net::Frame>& inbox,
                        std::uint64_t& data_frames_sent,
                        std::mt19937_64& backoff_rng, bool& saw_shutdown) {
  obs::Counter& resends =
      obs::DefaultRegistry().GetCounter("net.update_resends");
  obs::Counter& faults = obs::DefaultRegistry().GetCounter(
      "net.faults_injected", {{"kind", "any"}});
  const bool inject = ctx.options.faults.Any();

  for (int attempt = 0; attempt < ctx.options.retry.max_attempts; ++attempt) {
    if (attempt > 0) {
      resends.Increment();
      SleepMs(net::BackoffDelayMs(ctx.options.retry, attempt - 1,
                                  backoff_rng));
    }
    // Doomed connections die after their allotted number of data frames.
    if (injector.doomed() && data_frames_sent >= injector.kill_after_frame()) {
      AF_LOG(kInfo) << "net: fault injector killing client "
                    << ctx.client_id << "'s connection";
      link.conn->Close();
      return false;
    }
    auto action = net::FaultInjector::Action::kDeliver;
    if (inject) {
      action = injector.NextAction();
      if (action != net::FaultInjector::Action::kDeliver) {
        faults.Increment();
      }
    }
    ++data_frames_sent;
    switch (action) {
      case net::FaultInjector::Action::kDrop:
        break;  // never hits the wire; the ack timeout triggers a resend
      case net::FaultInjector::Action::kTruncate:
        // A frame prefix then a hard close: the server sees a stream that
        // dies mid-frame and evicts us. (Faulted workers never activate
        // shm, so this always acts on the real socket.)
        link.conn->SendBytes(update_bytes.first(update_bytes.size() / 2),
                             ctx.options.io_timeout_ms);
        link.conn->Close();
        return false;
      case net::FaultInjector::Action::kDelay:
        SleepMs(injector.delay_ms());
        link.SendFrameBytes(update_bytes, ctx.options.io_timeout_ms);
        break;
      case net::FaultInjector::Action::kDuplicate:
        link.SendFrameBytes(update_bytes, ctx.options.io_timeout_ms);
        link.SendFrameBytes(update_bytes, ctx.options.io_timeout_ms);
        break;
      case net::FaultInjector::Action::kDeliver:
        link.SendFrameBytes(update_bytes, ctx.options.io_timeout_ms);
        break;
    }

    // Await the receipt; anything else that arrives is parked.
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(ctx.options.ack_timeout_ms);
    while (true) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - Clock::now())
                            .count();
      if (left <= 0) {
        break;  // resend
      }
      net::Frame in;
      const auto status = link.TryRecvFrame(&in, static_cast<int>(left));
      if (status == net::Connection::RecvStatus::kTimeout) {
        break;  // resend
      }
      if (status == net::Connection::RecvStatus::kEof) {
        return false;  // server closed on us
      }
      if (in.type == net::MessageType::kAck) {
        if (net::DecodeAck(in).value == job_index) {
          return true;
        }
        continue;  // stale receipt for an earlier job
      }
      if (in.type == net::MessageType::kShutdown) {
        saw_shutdown = true;
        return true;  // run is over; the update no longer matters
      }
      inbox.push_back(std::move(in));
    }
  }
  AF_LOG(kWarn) << "net: client " << ctx.client_id << " gave up on job "
                << job_index << " after "
                << ctx.options.retry.max_attempts << " attempts";
  link.conn->Close();
  return false;
}

void RunWorker(WorkerContext ctx) {
  util::SetThreadLogPrefix("client " + std::to_string(ctx.client_id));
  try {
    net::FaultInjector injector(ctx.options.faults, ctx.client_id);
    std::uint64_t jitter_state =
        ctx.seed ^ (0xc0ffee123ull + static_cast<std::uint64_t>(
                                         ctx.client_id));
    std::mt19937_64 backoff_rng(util::SplitMix64(jitter_state));

    net::Connection conn = net::ConnectWithRetry(
        ctx.port, ctx.options.retry,
        ctx.seed ^ static_cast<std::uint64_t>(ctx.client_id));
    // Handshake: identify ourselves.
    conn.SendFrame(net::EncodeAck(
                       {static_cast<std::uint64_t>(ctx.client_id)}),
                   ctx.options.io_timeout_ms);

    // Training jobs draw from the same streams as the in-process backend,
    // which is what makes tcp and inproc runs bit-identical.
    util::RngFactory rngs(ctx.seed);
    std::deque<net::Frame> inbox;
    std::uint64_t data_frames_sent = 0;
    bool saw_shutdown = false;
    // Negotiated uplink codec. Stays null — legacy identity bytes — until a
    // CodecOffer arrives; an old server never sends one, so its first frame
    // (a ModelBroadcast) lands below and the run proceeds uncompressed.
    const compress::Codec* codec = nullptr;
    compress::FeedbackState feedback;
    std::unique_ptr<net::ShmSegment> shm;
    WorkerLink link;
    link.conn = &conn;
    std::vector<std::uint8_t> update_bytes;  // reused per-job encode scratch

    while (!saw_shutdown) {
      net::Frame frame;
      if (!inbox.empty()) {
        frame = std::move(inbox.front());
        inbox.pop_front();
      } else if (!link.RecvFrame(&frame, kWorkerIdleTimeoutMs)) {
        break;  // server closed the connection
      }
      if (frame.type == net::MessageType::kShutdown) {
        break;
      }
      if (frame.type == net::MessageType::kTraceOffer) {
        net::DecodeTraceOffer(frame);
        conn.SendFrame(
            net::EncodeTraceSelect({ctx.options.trace_context}),
            ctx.options.io_timeout_ms);
        continue;
      }
      if (frame.type == net::MessageType::kShmOffer) {
        const net::ShmOfferMsg offer = net::DecodeShmOffer(frame);
        bool mapped = false;
        // Fault injection acts on the socket (truncate, kill); a faulted
        // worker that moved its data frames onto rings would make those
        // faults meaningless, so it declines and stays on TCP.
        if (!ctx.options.faults.Any()) {
          try {
            shm = net::ShmSegment::Open(
                offer.name, static_cast<std::size_t>(offer.ring_bytes));
            mapped = true;
          } catch (const util::CheckError& e) {
            AF_LOG(kWarn) << "net: shm segment " << offer.name
                          << " rejected (" << e.what()
                          << "); staying on TCP";
          }
        }
        conn.SendFrame(net::EncodeShmSelect({mapped}),
                       ctx.options.io_timeout_ms);
        if (mapped) {
          link.shm = shm.get();  // all data frames ride the rings from here
        }
        continue;
      }
      if (frame.type == net::MessageType::kCodecOffer) {
        // Pick the first offered codec this build knows; identity otherwise.
        const net::CodecOfferMsg offer = net::DecodeCodecOffer(frame);
        std::string pick = "identity";
        for (const std::string& name : offer.codecs) {
          if (compress::Has(name)) {
            pick = name;
            break;
          }
        }
        conn.SendFrame(net::EncodeCodecSelect({pick}),
                       ctx.options.io_timeout_ms);
        const compress::Codec& selected = compress::Get(pick);
        codec = compress::IsIdentity(selected) ? nullptr : &selected;
        continue;
      }
      if (frame.type != net::MessageType::kModelBroadcast) {
        continue;  // stray ack from a resolved resend race
      }
      const net::ModelBroadcastMsg job = net::DecodeModelBroadcast(frame);
      const std::uint64_t stream_index =
          (static_cast<std::uint64_t>(ctx.client_id) << 32) | job.job_index;
      auto rng = rngs.Stream("client-train", stream_index);
      net::ClientUpdateMsg update;
      update.client_id = ctx.client_id;
      update.job_index = job.job_index;
      update.base_round = job.round;
      update.num_samples = ctx.client->num_samples();
      // Echo the broadcast's trace id; the train span below and the
      // server's defense span share it, which is the join key
      // tools/merge_traces.py stitches timelines on.
      update.trace_id = job.trace_id;
      update.parent_span_id = TrainSpanId(job.trace_id);
      {
        obs::ScopedSpan span(
            "net.worker.train",
            job.trace_id == 0
                ? obs::TraceContext{}
                : obs::TraceContext{job.trace_id, TrainSpanId(job.trace_id),
                                    job.parent_span_id});
        update.delta = ctx.client->TrainOnce(job.params, ctx.local, rng);
      }
      // Encode exactly once per job, straight into the reused scratch
      // buffer — resends reuse the same bytes, so retries stay
      // byte-identical and the feedback residual advances once.
      update_bytes.clear();
      net::AppendClientUpdateFrame(update_bytes, update, codec, &feedback);
      if (!SendUpdateReliably(ctx, link, injector, update_bytes,
                              job.job_index, inbox, data_frames_sent,
                              backoff_rng, saw_shutdown)) {
        return;
      }
    }
  } catch (const std::exception& e) {
    AF_LOG(kWarn) << "net: worker for client " << ctx.client_id
                  << " terminated: " << e.what();
  }
}

// ---------------------------------------------------------------------
// TcpBackend: executes the simulator's training batches over the wire.

class TcpBackend : public TrainBackend {
 public:
  TcpBackend(net::Server* server, std::vector<std::size_t> num_samples,
             const TransportOptions& options, std::uint64_t seed)
      : server_(server),
        num_samples_(std::move(num_samples)),
        alive_(num_samples_.size(), true),
        alive_count_(num_samples_.size()),
        options_(options),
        seed_(seed),
        rtt_us_(obs::DefaultRegistry().GetHistogram("net.job_rtt_us")) {
    server_->SetUpdateHandler(
        [this](int client_id, net::ClientUpdateMsg msg) {
          OnUpdate(client_id, std::move(msg));
        });
    server_->SetDisconnectHandler(
        [this](int client_id) { OnDisconnect(client_id); });
  }

  // The server outlives the backend (the driver polls it again during
  // shutdown); the handlers must not.
  ~TcpBackend() override {
    server_->SetUpdateHandler(nullptr);
    server_->SetDisconnectHandler(nullptr);
  }

  std::vector<net::UpdateView> Train(
      const std::vector<TrainJob>& jobs) override {
    AF_TRACE_SPAN("net.backend.train");
    std::vector<net::UpdateView> deltas(jobs.size());
    current_deltas_ = &deltas;
    outstanding_.clear();

    for (std::size_t j = 0; j < jobs.size(); ++j) {
      const TrainJob& job = jobs[j];
      if (!alive_[static_cast<std::size_t>(job.client_id)]) {
        continue;  // lost between scheduling and training
      }
      net::ModelBroadcastMsg msg;
      msg.round = job.dispatch_round;
      msg.job_index = job.job_index;
      // Borrowed view over the shared base — the encoder reads it in place,
      // no per-job copy of the model.
      msg.params = net::UpdateView(std::span<const float>(*job.base),
                                   job.base);
      if (options_.trace_context &&
          server_->ClientTraceContext(job.client_id)) {
        msg.trace_id = TraceIdFor(seed_, job.client_id, job.job_index);
        msg.parent_span_id = DispatchSpanId(msg.trace_id);
      }
      // Downlink codec: the client's negotiated pick when it can carry full
      // params; identity (legacy bytes) for delta-only codecs.
      const compress::Codec* codec = server_->ClientCodec(job.client_id);
      if (codec != nullptr && !codec->broadcast_safe()) {
        codec = nullptr;
      }
      if (!server_->SendTo(job.client_id,
                           net::EncodeModelBroadcast(msg, codec))) {
        MarkDead(job.client_id);
        continue;
      }
      outstanding_[{job.client_id, job.job_index}] = {j, NowNs()};
    }

    const auto deadline =
        Clock::now() + std::chrono::milliseconds(options_.job_timeout_ms);
    while (!outstanding_.empty() && Clock::now() < deadline) {
      server_->PollOnce(20);
    }
    // Anyone still silent blew the job deadline: cut them loose.
    std::vector<int> laggards;
    for (const auto& [key, value] : outstanding_) {
      laggards.push_back(key.first);
    }
    for (int client_id : laggards) {
      server_->Evict(client_id, "job deadline exceeded");
    }
    // Push out any still-queued acks so workers stop resending while the
    // driver is busy aggregating/evaluating.
    server_->Flush(options_.io_timeout_ms);
    current_deltas_ = nullptr;
    return deltas;
  }

  std::size_t ClientCount() const override { return num_samples_.size(); }
  std::size_t NumSamples(int client_id) const override {
    return num_samples_[static_cast<std::size_t>(client_id)];
  }
  bool IsAlive(int client_id) const override {
    return alive_[static_cast<std::size_t>(client_id)];
  }
  std::size_t AliveCount() const override { return alive_count_; }

  WireStats UpdateWireStats(int client_id,
                            std::uint64_t job_index) const override {
    auto it = wire_stats_.find({client_id, job_index});
    return it == wire_stats_.end() ? WireStats{} : it->second;
  }

 private:
  struct Pending {
    std::size_t position = 0;
    std::uint64_t sent_ns = 0;
  };

  void MarkDead(int client_id) {
    const auto idx = static_cast<std::size_t>(client_id);
    if (alive_[idx]) {
      alive_[idx] = false;
      --alive_count_;
    }
    for (auto it = outstanding_.begin(); it != outstanding_.end();) {
      it = it->first.first == client_id ? outstanding_.erase(it)
                                        : std::next(it);
    }
  }

  void OnUpdate(int client_id, net::ClientUpdateMsg msg) {
    auto it = outstanding_.find({client_id, msg.job_index});
    if (it == outstanding_.end()) {
      return;  // late copy of an already-settled job
    }
    AF_CHECK_EQ(msg.num_samples, NumSamples(client_id))
        << "client " << client_id << " reported inconsistent sample count";
    rtt_us_.Record(static_cast<double>(NowNs() - it->second.sent_ns) / 1e3);
    AF_CHECK(current_deltas_ != nullptr);
    const compress::Codec* codec = server_->ClientCodec(client_id);
    wire_stats_[{client_id, msg.job_index}] = {
        codec != nullptr ? codec->name() : "identity", msg.wire_bytes};
    // The delta either owns its floats already (lossy decode materialized
    // them) or aliases the connection's read buffer, which dies when this
    // callback returns — that one gets the single counted uplink copy, into
    // the arena.
    if (msg.delta.has_keepalive()) {
      (*current_deltas_)[it->second.position] = std::move(msg.delta);
    } else {
      obs::DefaultRegistry()
          .GetCounter("transport.bytes_copied")
          .Increment(static_cast<std::uint64_t>(msg.delta.size()) *
                     sizeof(float));
      (*current_deltas_)[it->second.position] =
          net::UpdateView::CopyToArena(arena_, msg.delta);
    }
    outstanding_.erase(it);
  }

  void OnDisconnect(int client_id) { MarkDead(client_id); }

  net::Server* server_;
  std::vector<std::size_t> num_samples_;
  std::vector<bool> alive_;
  std::size_t alive_count_ = 0;
  TransportOptions options_;
  std::uint64_t seed_ = 0;
  obs::Histogram& rtt_us_;
  std::map<std::pair<int, std::uint64_t>, Pending> outstanding_;
  std::map<std::pair<int, std::uint64_t>, WireStats> wire_stats_;
  // Uplink deltas materialize here; blocks free themselves once the last
  // view into them dies (end of the aggregation round, typically).
  util::Arena arena_;
  std::vector<net::UpdateView>* current_deltas_ = nullptr;
};

}  // namespace

// ---------------------------------------------------------------------
// Driver

struct DistributedDriver::Impl {
  SimulationConfig config;
  nn::ModelSpec spec;
  std::vector<std::unique_ptr<Client>> clients;
  std::vector<int> malicious_ids;
  std::unique_ptr<attacks::Attack> attack;
  std::unique_ptr<defense::Defense> defense;
  const data::Dataset* test_set = nullptr;
  data::Dataset server_root;
  TransportOptions transport;

  std::unique_ptr<net::Server> server;
  std::vector<std::thread> workers;

  void JoinWorkers() {
    if (server != nullptr) {
      server->BroadcastShutdown();
      server->Flush(1000);
    }
    for (auto& worker : workers) {
      if (worker.joinable()) {
        worker.join();
      }
    }
    workers.clear();
  }
};

DistributedDriver::DistributedDriver(
    SimulationConfig config, const nn::ModelSpec& spec,
    std::vector<std::unique_ptr<Client>> clients,
    std::vector<int> malicious_ids, std::unique_ptr<attacks::Attack> attack,
    std::unique_ptr<defense::Defense> defense, const data::Dataset* test_set,
    data::Dataset server_root, TransportOptions transport)
    : impl_(std::make_unique<Impl>()) {
  impl_->config = config;
  impl_->spec = spec;
  impl_->clients = std::move(clients);
  impl_->malicious_ids = std::move(malicious_ids);
  impl_->attack = std::move(attack);
  impl_->defense = std::move(defense);
  impl_->test_set = test_set;
  impl_->server_root = std::move(server_root);
  impl_->transport = transport;
  AF_CHECK(!impl_->clients.empty());
}

DistributedDriver::~DistributedDriver() {
  try {
    impl_->JoinWorkers();
  } catch (...) {
    // Destructor must not throw; workers exit on their idle timeout.
  }
}

SimulationResult DistributedDriver::Run() {
  AF_TRACE_SPAN("net.driver.run");
  Impl& impl = *impl_;

  // Resolve AF_LOG_LEVEL before any worker thread exists so every thread
  // sees the same level from its first line, and tag the driver's own lines.
  util::GetLogLevel();
  util::SetThreadLogPrefix("server");

  net::ServerOptions server_options;
  server_options.port = impl.transport.port;
  server_options.io_timeout_ms = impl.transport.io_timeout_ms;
  server_options.offer_trace_context = impl.transport.trace_context;
  server_options.offer_shm = impl.transport.shm;
  server_options.shm_ring_bytes = impl.transport.shm_ring_bytes;
  if (!impl.transport.codec.empty()) {
    // Validate the name up front (throws with the known-codec list) and
    // advertise it; clients pick it during their handshake.
    compress::Get(impl.transport.codec);
    server_options.advertised_codecs = {impl.transport.codec};
  }
  impl.server = std::make_unique<net::Server>(server_options);
  AF_LOG(kInfo) << "net: server listening on 127.0.0.1:"
                << impl.server->port();

  std::vector<std::size_t> num_samples;
  num_samples.reserve(impl.clients.size());
  for (const auto& client : impl.clients) {
    num_samples.push_back(client->num_samples());
  }

  for (std::size_t c = 0; c < impl.clients.size(); ++c) {
    WorkerContext ctx;
    ctx.client_id = static_cast<int>(c);
    ctx.client = impl.clients[c].get();
    ctx.seed = impl.config.seed;
    ctx.local = impl.config.local;
    ctx.port = impl.server->port();
    ctx.options = impl.transport;
    impl.workers.emplace_back(RunWorker, std::move(ctx));
  }

  SimulationResult result;
  try {
    AF_CHECK(impl.server->WaitForClients(
        impl.clients.size(), impl.transport.handshake_timeout_ms))
        << "only " << impl.server->ConnectedCount() << " of "
        << impl.clients.size() << " clients completed the handshake";

    TcpBackend backend(impl.server.get(), std::move(num_samples),
                       impl.transport, impl.config.seed);
    ExperimentSpec sim_spec;
    sim_spec.sim = impl.config;
    sim_spec.model = impl.spec;
    sim_spec.backend = &backend;
    sim_spec.malicious_ids = impl.malicious_ids;
    sim_spec.attack = std::move(impl.attack);
    sim_spec.defense = std::move(impl.defense);
    sim_spec.test_set = impl.test_set;
    sim_spec.server_root = std::move(impl.server_root);
    Simulation simulation(std::move(sim_spec));
    result = simulation.Run();
  } catch (...) {
    impl.JoinWorkers();
    util::SetThreadLogPrefix("");
    throw;
  }
  impl.JoinWorkers();
  util::SetThreadLogPrefix("");
  return result;
}

}  // namespace fl

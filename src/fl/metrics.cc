#include "fl/metrics.h"

#include "obs/metrics.h"

namespace fl {

void ConfusionCounts::Add(const ConfusionCounts& other) {
  true_positive += other.true_positive;
  false_positive += other.false_positive;
  true_negative += other.true_negative;
  false_negative += other.false_negative;
}

double ConfusionCounts::Precision() const {
  const std::size_t denom = true_positive + false_positive;
  return denom == 0 ? 0.0
                    : static_cast<double>(true_positive) /
                          static_cast<double>(denom);
}

double ConfusionCounts::Recall() const {
  const std::size_t denom = true_positive + false_negative;
  return denom == 0 ? 0.0
                    : static_cast<double>(true_positive) /
                          static_cast<double>(denom);
}

void FinalizeResult(SimulationResult& result) {
  result.total_confusion = ConfusionCounts{};
  result.total_dropped_stale = 0;
  result.defense_latency = LatencySummary{};
  obs::Histogram latency;  // exponential μs buckets, [1, 2^31]
  std::vector<double> evals;
  for (const auto& record : result.rounds) {
    result.total_confusion.Add(record.confusion);
    result.total_dropped_stale += record.dropped_stale;
    result.defense_latency.total_micros += record.defense_micros;
    latency.Record(static_cast<double>(record.defense_micros));
    if (record.test_accuracy >= 0.0) {
      evals.push_back(record.test_accuracy);
    }
  }
  result.defense_latency.samples = latency.Count();
  result.defense_latency.p50_micros = latency.Percentile(0.50);
  result.defense_latency.p95_micros = latency.Percentile(0.95);
  result.defense_latency.p99_micros = latency.Percentile(0.99);
  result.defense_latency.max_micros = latency.Max();
  if (evals.empty()) {
    result.final_accuracy = 0.0;
    return;
  }
  const std::size_t take = evals.size() < 3 ? evals.size() : 3;
  double sum = 0.0;
  for (std::size_t i = evals.size() - take; i < evals.size(); ++i) {
    sum += evals[i];
  }
  result.final_accuracy = sum / static_cast<double>(take);
}

}  // namespace fl

#include "fl/backend.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace fl {

InprocBackend::InprocBackend(std::vector<std::unique_ptr<Client>> clients,
                             util::ThreadPool* pool, std::uint64_t seed,
                             LocalTrainConfig local,
                             const compress::Codec* codec)
    : clients_(std::move(clients)),
      pool_(pool),
      rngs_(seed),
      local_(local),
      codec_(codec != nullptr && !compress::IsIdentity(*codec) ? codec
                                                               : nullptr),
      feedback_(codec_ != nullptr ? clients_.size() : 0) {
  AF_CHECK(!clients_.empty());
  AF_CHECK(pool_ != nullptr);
}

std::size_t InprocBackend::NumSamples(int client_id) const {
  return clients_[static_cast<std::size_t>(client_id)]->num_samples();
}

std::vector<net::UpdateView> InprocBackend::Train(
    const std::vector<TrainJob>& jobs) {
  // Same-client jobs share a model instance; serialise them into waves so
  // each wave touches each client at most once.
  std::vector<std::vector<std::size_t>> waves;
  std::vector<std::size_t> jobs_seen(clients_.size(), 0);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const std::size_t cid = static_cast<std::size_t>(jobs[j].client_id);
    const std::size_t wave = jobs_seen[cid]++;
    if (waves.size() <= wave) {
      waves.emplace_back();
    }
    waves[wave].push_back(j);
  }

  std::vector<net::UpdateView> honest(jobs.size());
  // Mirror of the wire's downlink policy: broadcast-safe codecs compress
  // full params, delta-only codecs fall back to identity for the base.
  const bool lossy_downlink = codec_ != nullptr && codec_->broadcast_safe();
  for (const auto& wave : waves) {
    AF_TRACE_SPAN("train.wave");
    pool_->ParallelFor(wave.size(), [&](std::size_t w) {
      AF_TRACE_SPAN("train.job");
      const std::size_t j = wave[w];
      const TrainJob& job = jobs[j];
      const std::size_t cid = static_cast<std::size_t>(job.client_id);
      const std::uint64_t stream_index =
          (static_cast<std::uint64_t>(cid) << 32) | job.job_index;
      auto rng = rngs_.Stream("client-train", stream_index);
      if (codec_ == nullptr) {
        honest[j] = clients_[cid]->TrainOnce(*job.base, local_, rng);
        return;
      }
      // Feedback stays per-client: each wave holds one job per client and
      // waves run in job_index order, matching the tcp worker's sequential
      // encode order.
      const std::vector<float> base =
          lossy_downlink ? compress::RoundTrip(*codec_, *job.base) : *job.base;
      std::vector<float> delta = clients_[cid]->TrainOnce(base, local_, rng);
      honest[j] = compress::RoundTrip(*codec_, delta, &feedback_[cid]);
    });
  }
  // Inproc jobs never serialize: every delta view takes ownership of the
  // trained vector directly, zero copies per update.
  obs::DefaultRegistry()
      .GetCounter("transport.updates")
      .Increment(static_cast<std::uint64_t>(jobs.size()));
  return honest;
}

}  // namespace fl

#include "fl/backend.h"

#include "obs/trace.h"
#include "util/check.h"

namespace fl {

InprocBackend::InprocBackend(std::vector<std::unique_ptr<Client>> clients,
                             util::ThreadPool* pool, std::uint64_t seed,
                             LocalTrainConfig local)
    : clients_(std::move(clients)),
      pool_(pool),
      rngs_(seed),
      local_(local) {
  AF_CHECK(!clients_.empty());
  AF_CHECK(pool_ != nullptr);
}

std::size_t InprocBackend::NumSamples(int client_id) const {
  return clients_[static_cast<std::size_t>(client_id)]->num_samples();
}

std::vector<std::vector<float>> InprocBackend::Train(
    const std::vector<TrainJob>& jobs) {
  // Same-client jobs share a model instance; serialise them into waves so
  // each wave touches each client at most once.
  std::vector<std::vector<std::size_t>> waves;
  std::vector<std::size_t> jobs_seen(clients_.size(), 0);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const std::size_t cid = static_cast<std::size_t>(jobs[j].client_id);
    const std::size_t wave = jobs_seen[cid]++;
    if (waves.size() <= wave) {
      waves.emplace_back();
    }
    waves[wave].push_back(j);
  }

  std::vector<std::vector<float>> honest(jobs.size());
  for (const auto& wave : waves) {
    AF_TRACE_SPAN("train.wave");
    pool_->ParallelFor(wave.size(), [&](std::size_t w) {
      AF_TRACE_SPAN("train.job");
      const std::size_t j = wave[w];
      const TrainJob& job = jobs[j];
      const std::size_t cid = static_cast<std::size_t>(job.client_id);
      const std::uint64_t stream_index =
          (static_cast<std::uint64_t>(cid) << 32) | job.job_index;
      auto rng = rngs_.Stream("client-train", stream_index);
      honest[j] = clients_[cid]->TrainOnce(*job.base, local_, rng);
    });
  }
  return honest;
}

}  // namespace fl

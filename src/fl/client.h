// Client-side local training.
//
// A client owns a persistent model instance (so repeated jobs reuse the
// buffers) and produces flat parameter deltas: delta = trained − base.
#pragma once

#include <cstdint>
#include <memory>
#include <random>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "nn/models.h"
#include "nn/optimizer.h"

namespace fl {

struct LocalTrainConfig {
  std::size_t epochs = 5;
  std::size_t batch_size = 32;
  nn::OptimizerConfig optimizer;
};

class Client {
 public:
  // `partition` indexes into `dataset`; both must outlive the client.
  Client(int id, const data::Dataset* dataset,
         std::vector<std::size_t> partition, const nn::ModelSpec& spec,
         std::uint64_t model_seed);

  // Runs E local epochs starting from `base_params` and returns the flat
  // delta. `rng` drives mini-batch shuffling; a fresh optimizer is built per
  // job (local state does not leak across FL rounds).
  std::vector<float> TrainOnce(std::span<const float> base_params,
                               const LocalTrainConfig& config,
                               std::mt19937_64& rng);

  int id() const { return id_; }
  std::size_t num_samples() const { return partition_.size(); }
  const std::vector<std::size_t>& partition() const { return partition_; }

 private:
  int id_;
  const data::Dataset* dataset_;
  std::vector<std::size_t> partition_;
  std::unique_ptr<nn::Sequential> model_;
};

// Server-side accuracy evaluation of flat parameters on a dataset.
double EvaluateAccuracy(const nn::ModelSpec& spec, nn::Sequential& model,
                        std::span<const float> params,
                        const data::Dataset& dataset,
                        std::size_t batch_size = 256);

}  // namespace fl

// Deterministic cross-process trace ids.
//
// A traced run must stay bit-identical to an untraced one, so trace ids are
// never drawn from the simulation's RNG streams — they are pure SplitMix64
// mixes of (seed, client, job). Server and client derive the same ids from
// the same inputs, which is what lets tools/merge_traces.py stitch their
// separately recorded spans into one causal timeline without any runtime
// coordination beyond the ids already on the wire.
#pragma once

#include <cstdint>

#include "util/rng.h"

namespace fl {

// Pure mix of up to three words; `| 1` keeps the result non-zero (0 means
// "no context" everywhere in the trace plane).
inline std::uint64_t MixTraceId(std::uint64_t a, std::uint64_t b,
                                std::uint64_t c) {
  std::uint64_t state = a;
  state ^= 0x9E3779B97F4A7C15ull * (b + 1);
  util::SplitMix64(state);
  state ^= 0xBF58476D1CE4E5B9ull * (c + 1);
  return util::SplitMix64(state) | 1;
}

// One trace id per training job: the logical operation "dispatch → train →
// upload → defense verdict" end to end.
inline std::uint64_t TraceIdFor(std::uint64_t seed, int client_id,
                                std::uint64_t job_index) {
  return MixTraceId(seed, static_cast<std::uint64_t>(client_id), job_index);
}

// Fixed span ids within a trace, so parent links survive process boundaries.
inline std::uint64_t DispatchSpanId(std::uint64_t trace_id) {
  return MixTraceId(trace_id, 1, 0);
}
inline std::uint64_t TrainSpanId(std::uint64_t trace_id) {
  return MixTraceId(trace_id, 2, 0);
}
inline std::uint64_t DefenseSpanId(std::uint64_t trace_id) {
  return MixTraceId(trace_id, 3, 0);
}

}  // namespace fl

#include "fl/runtime_options.h"

#include "compress/codec.h"
#include "util/check.h"
#include "util/flags.h"

namespace fl {

const std::vector<std::string>& RuntimeOptions::FlagNames() {
  static const std::vector<std::string> kNames = {
      "transport",      "port",
      "fault-drop",     "fault-delay",
      "fault-duplicate", "fault-truncate",
      "fault-delay-ms", "fault-kill",
      "compress",       "metrics-port",
      "clients-virtual", "pool-connections",
      "pool-workers",   "pool-latency-ms",
      "pool-latency-zipf", "reactor-shards",
  };
  return kNames;
}

RuntimeOptions RuntimeOptions::FromFlags(const util::FlagParser& flags,
                                         std::uint64_t seed) {
  RuntimeOptions options;
  options.transport =
      ParseTransportKind(flags.GetString("transport", "inproc"));
  options.net.port = static_cast<std::uint16_t>(flags.GetInt("port", 0));
  options.net.faults.drop_prob = flags.GetDouble("fault-drop", 0.0);
  options.net.faults.delay_prob = flags.GetDouble("fault-delay", 0.0);
  options.net.faults.duplicate_prob =
      flags.GetDouble("fault-duplicate", 0.0);
  options.net.faults.truncate_prob = flags.GetDouble("fault-truncate", 0.0);
  options.net.faults.delay_ms = flags.GetDouble("fault-delay-ms", 5.0);
  options.net.faults.kill_fraction = flags.GetDouble("fault-kill", 0.0);
  options.net.faults.seed = seed;
  options.net.reactor_shards =
      static_cast<int>(flags.GetInt("reactor-shards", 1));
  options.compress = flags.GetString("compress", "");
  if (flags.GetBool("clients-virtual", false)) {
    options.pool.mode = ClientPoolSpec::Mode::kVirtual;
  }
  options.pool.connections =
      static_cast<int>(flags.GetInt("pool-connections", 0));
  options.pool.workers = static_cast<int>(flags.GetInt("pool-workers", 0));
  options.pool.latency.base_ms = flags.GetDouble("pool-latency-ms", 0.0);
  options.pool.latency.zipf_s = flags.GetDouble("pool-latency-zipf", 0.0);
  options.has_metrics_port = flags.Has("metrics-port");
  options.metrics_port =
      static_cast<std::uint16_t>(flags.GetInt("metrics-port", 0));
  return options;
}

void RuntimeOptions::Validate() const {
  AF_CHECK(compress.empty() || compress::Registry::Global().Has(compress))
      << "unknown --compress: " << compress << " (try --list-codecs)";
  const bool virtual_fleet = pool.mode == ClientPoolSpec::Mode::kVirtual;
  if (virtual_fleet) {
    AF_CHECK(!net.faults.Any())
        << "--clients-virtual is incompatible with --fault-* injection "
           "(virtual clients send updates exactly once; use the real "
           "fleet for fault experiments)";
    AF_CHECK(transport != TransportKind::kShm)
        << "--clients-virtual is incompatible with --transport=shm "
           "(shared-memory rings are per-connection-pair; multiplexed "
           "connections stay on TCP)";
  }
  AF_CHECK_LE(net.reactor_shards, 256)
      << "--reactor-shards must be <= 256 (use <= 0 for one per core)";
  AF_CHECK_GE(pool.connections, 0)
      << "--pool-connections must be >= 0 (0 picks a default)";
  AF_CHECK_LE(pool.connections, 4096) << "--pool-connections too large";
  AF_CHECK_GE(pool.workers, 0)
      << "--pool-workers must be >= 0 (0 picks hardware concurrency)";
  AF_CHECK_GE(pool.latency.base_ms, 0.0)
      << "--pool-latency-ms must be >= 0";
}

void RuntimeOptions::ApplyTo(ExperimentConfig* config) const {
  AF_CHECK(config != nullptr);
  config->transport = transport;
  config->net = net;
  config->compress = compress;
  config->pool = pool;
}

}  // namespace fl

#include "fl/telemetry.h"

#include <fstream>
#include <stdexcept>

#include "obs/json.h"

namespace fl {
namespace {

void AppendConfusion(obs::JsonWriter& json, const ConfusionCounts& confusion) {
  json.Key("confusion").BeginObject();
  json.Key("tp").UInt(confusion.true_positive);
  json.Key("fp").UInt(confusion.false_positive);
  json.Key("tn").UInt(confusion.true_negative);
  json.Key("fn").UInt(confusion.false_negative);
  json.EndObject();
}

std::string RoundJson(const RoundRecord& r) {
  obs::JsonWriter json;
  json.BeginObject();
  json.Key("round").UInt(r.round);
  json.Key("sim_time").Number(r.sim_time);
  json.Key("test_accuracy");
  if (r.test_accuracy >= 0.0) {
    json.Number(r.test_accuracy);
  } else {
    json.Null();
  }
  json.Key("buffered").UInt(r.buffered);
  json.Key("accepted").UInt(r.accepted);
  json.Key("rejected").UInt(r.rejected);
  json.Key("deferred").UInt(r.deferred);
  json.Key("dropped_stale").UInt(r.dropped_stale);
  json.Key("mean_staleness").Number(r.mean_staleness);
  json.Key("defense_micros").Int(r.defense_micros);
  json.Key("staleness_histogram").BeginObject();
  for (const auto& [staleness, count] : r.staleness_histogram) {
    json.Key(std::to_string(staleness)).UInt(count);
  }
  json.EndObject();
  AppendConfusion(json, r.confusion);
  json.EndObject();
  return json.TakeString();
}

}  // namespace

void WriteRoundsJsonl(const SimulationResult& result,
                      const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot open telemetry output: " + path);
  }
  for (const RoundRecord& r : result.rounds) {
    out << RoundJson(r) << '\n';
  }
}

std::string RunSummaryJson(const SimulationResult& result) {
  obs::JsonWriter json;
  json.BeginObject();
  json.Key("final_accuracy").Number(result.final_accuracy);
  json.Key("rounds").UInt(result.rounds.size());
  json.Key("wall_seconds").Number(result.wall_seconds);
  json.Key("total_dropped_stale").UInt(result.total_dropped_stale);
  json.Key("detection_precision").Number(result.total_confusion.Precision());
  json.Key("detection_recall").Number(result.total_confusion.Recall());
  AppendConfusion(json, result.total_confusion);
  json.Key("defense_latency").BeginObject();
  json.Key("total_micros").Int(result.defense_latency.total_micros);
  json.Key("samples").UInt(result.defense_latency.samples);
  json.Key("p50_micros").Number(result.defense_latency.p50_micros);
  json.Key("p95_micros").Number(result.defense_latency.p95_micros);
  json.Key("p99_micros").Number(result.defense_latency.p99_micros);
  json.Key("max_micros").Number(result.defense_latency.max_micros);
  json.EndObject();
  json.EndObject();
  return json.TakeString();
}

void WriteRunSummaryJson(const SimulationResult& result,
                         const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot open telemetry output: " + path);
  }
  out << RunSummaryJson(result) << '\n';
}

}  // namespace fl

// Shared CLI surface for the distributed runtime: every binary that takes
// --transport / --fault-* / --compress / --metrics-port parses them through
// this one struct, so a new runtime flag (e.g. --clients-virtual,
// --reactor-shards) lands once instead of once per tool.
//
//   util::FlagParser flags(argc, argv);
//   flags.RejectUnknown(Concat(my_flags, fl::RuntimeOptions::FlagNames()));
//   fl::RuntimeOptions runtime = fl::RuntimeOptions::FromFlags(flags, seed);
//   runtime.Validate();
//   runtime.ApplyTo(&config);
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fl/experiment.h"

namespace util {
class FlagParser;
}  // namespace util

namespace fl {

struct RuntimeOptions {
  TransportKind transport = TransportKind::kInproc;
  TransportOptions net;       // port, faults, reactor shards
  std::string compress;       // codec registry name; empty → none
  ClientPoolSpec pool;        // --clients-virtual fleet shape
  bool has_metrics_port = false;
  std::uint16_t metrics_port = 0;

  // The flag names this struct consumes — splice into RejectUnknown():
  //   transport, port, fault-drop, fault-delay, fault-duplicate,
  //   fault-truncate, fault-delay-ms, fault-kill, compress, metrics-port,
  //   clients-virtual, pool-connections, pool-workers, pool-latency-ms,
  //   pool-latency-zipf, reactor-shards
  static const std::vector<std::string>& FlagNames();

  // Parses the flags above. `seed` feeds the fault injector's RNG so runs
  // stay reproducible. Throws util::CheckError on unparseable values.
  static RuntimeOptions FromFlags(const util::FlagParser& flags,
                                  std::uint64_t seed);

  // Cross-flag consistency: known codec name, no fault injection on a
  // virtual fleet, no shm transport with a virtual fleet (multiplexed
  // connections are never offered rings), sane shard/connection counts.
  // Throws util::CheckError with an actionable message.
  void Validate() const;

  // Copies the parsed runtime settings into an experiment config
  // (transport, net, compress, pool).
  void ApplyTo(ExperimentConfig* config) const;
};

}  // namespace fl

// Shared FL wire types.
//
// Header-only so attacks/ and defense/ can use the update type without
// linking the simulator; everything the server-side modules see crosses
// through here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "net/update_view.h"

namespace fl {

// One client report: the flattened parameter delta
// (local model after E epochs − the global model the client started from)
// plus the metadata the server legitimately observes.
struct ModelUpdate {
  int client_id = -1;
  std::size_t base_round = 0;     // global model version training started from
  std::size_t arrival_round = 0;  // server round when buffered
  std::size_t staleness = 0;      // arrival_round - base_round
  std::size_t num_samples = 0;    // aggregation weight (FedAvg-style)
  // Ref-counted immutable view: updates that arrive over the zero-copy
  // transport share one arena materialization instead of owning a vector
  // each; assigning a std::vector<float> still works (the view takes
  // ownership). Read through span conversion / operator[]; rebuild-and-
  // assign to "mutate".
  net::UpdateView delta;

  // Ground truth for evaluation metrics ONLY. Defenses must never read it;
  // the simulator uses it to compute detection precision/recall.
  bool is_malicious_truth = false;

  // Observability sidecar — never consulted by defenses or aggregation.
  // trace_id: cross-process trace identity (fl/trace_context.h); always
  // derivable, 0 only on updates restored from old checkpoints.
  std::uint64_t trace_id = 0;
  // Wire provenance (tcp transport only; empty/0 on inproc runs).
  std::string codec;
  std::uint64_t wire_bytes = 0;
  // steady_clock stamp when the update entered the server buffer; feeds the
  // audit trail's queue-wait latency. 0 = unknown (e.g. after a checkpoint
  // restore — wall latencies are not meaningful across process lifetimes).
  std::uint64_t enqueued_ns = 0;
};

}  // namespace fl

// Shared FL wire types.
//
// Header-only so attacks/ and defense/ can use the update type without
// linking the simulator; everything the server-side modules see crosses
// through here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fl {

// One client report: the flattened parameter delta
// (local model after E epochs − the global model the client started from)
// plus the metadata the server legitimately observes.
struct ModelUpdate {
  int client_id = -1;
  std::size_t base_round = 0;     // global model version training started from
  std::size_t arrival_round = 0;  // server round when buffered
  std::size_t staleness = 0;      // arrival_round - base_round
  std::size_t num_samples = 0;    // aggregation weight (FedAvg-style)
  std::vector<float> delta;

  // Ground truth for evaluation metrics ONLY. Defenses must never read it;
  // the simulator uses it to compute detection precision/recall.
  bool is_malicious_truth = false;
};

}  // namespace fl

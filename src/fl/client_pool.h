// Virtual-client engine: the scale half of the distributed run mode.
//
// The thread-per-client worker model is dead at 10k clients. A
// VirtualClientPool instead multiplexes N simulated clients over a small
// set of TCP connections (each announcing its id slice with one kHello
// frame) and runs their training jobs on a shared work queue drained by a
// fixed crew of worker threads — 100k–1M-client populations cost
// connections + workers, not threads.
//
//   pump thread (client-side net::Reactor)     engine workers
//   ───────────────────────────────────────    ─────────────────────────
//   reads sockets, demuxes ModelBroadcasts     pop job → optional latency
//   by their AFVC client-id block, submits     sleep → train fn → encode
//   jobs; flushes outboxes the workers         ClientUpdate into the
//   filled (woken via Reactor::Wakeup)         conn's outbox → Wakeup
//
// Updates are sent exactly once: fault injection is forbidden on virtual
// pools (enforced by the driver), TCP is reliable, and the server acks are
// read and dropped by the pump. Training draws from the same
// (client_id, job_index)-keyed RNG streams as the real workers, so a
// virtual run is bit-identical to a real-worker or inproc run of the same
// config — across any worker count, since the server assigns results by
// job position, not arrival order.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/socket.h"

namespace fl {

// Per-client artificial latency: client i sleeps base_ms / (i+1)^zipf_s
// before training (client 0 is the slowest). base_ms == 0 → no sleeps.
// Purely a timing model — results are unaffected.
struct LatencyModelSpec {
  double base_ms = 0.0;
  double zipf_s = 0.0;
};

// How a distributed run executes its client fleet. Part of the public
// experiment surface (ExperimentConfig::pool / DistributedSpec::pool).
struct ClientPoolSpec {
  enum class Mode {
    kReal,     // one OS thread + one connection per client (legacy)
    kVirtual,  // multiplexed virtual clients (this header)
  };
  Mode mode = Mode::kReal;
  // Virtual mode only: TCP connections carrying the fleet; 0 → one per 64
  // clients, clamped to [1, 256].
  int connections = 0;
  // Virtual mode only: training worker threads; 0 → hardware concurrency.
  int workers = 0;
  LatencyModelSpec latency;
};

// Resolved defaults for ClientPoolSpec's zero values.
int ResolvePoolConnections(int requested, int num_clients);
int ResolvePoolWorkers(int requested);

// One training job demuxed off a connection. `base` is an owned copy of
// the broadcast parameters (the wire buffer is recycled immediately).
struct VirtualJob {
  int client_id = -1;
  std::uint64_t job_index = 0;
  std::uint64_t round = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
  std::vector<float> base;
};

// Shared work queue + fixed worker crew. Tasks are opaque thunks so the
// engine is reusable outside the pool (benchmarks submit synthetic work).
class VirtualClientEngine {
 public:
  explicit VirtualClientEngine(int workers);
  ~VirtualClientEngine();  // drains nothing: stops after in-flight tasks

  VirtualClientEngine(const VirtualClientEngine&) = delete;
  VirtualClientEngine& operator=(const VirtualClientEngine&) = delete;

  void Submit(std::function<void()> task);
  // Blocks until the queue is empty and every popped task has returned.
  void Drain();
  int worker_count() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

struct VirtualPoolOptions {
  std::uint16_t port = 0;
  int num_clients = 0;  // clients get ids 0 .. num_clients-1
  int connections = 0;  // 0 → ResolvePoolConnections default
  int workers = 0;      // 0 → ResolvePoolWorkers default
  int io_timeout_ms = 10000;
  bool trace_context = false;  // answer the server's TraceOffer with this
  net::RetryConfig retry;
  std::uint64_t seed = 0;
  LatencyModelSpec latency;
};

class VirtualClientPool {
 public:
  // Produces the flat delta for one job. Called concurrently from engine
  // workers, at most once per (client_id, job_index), and never
  // concurrently for the same client: the pool serializes a client's jobs
  // in arrival order (FedBuff may dispatch several to one client; a real
  // worker would drain them sequentially off its socket).
  using TrainFn = std::function<std::vector<float>(const VirtualJob&)>;
  using NumSamplesFn = std::function<std::uint64_t(int client_id)>;

  VirtualClientPool(VirtualPoolOptions options, TrainFn train,
                    NumSamplesFn num_samples);
  ~VirtualClientPool();  // implies Stop()

  VirtualClientPool(const VirtualClientPool&) = delete;
  VirtualClientPool& operator=(const VirtualClientPool&) = delete;

  // Connects every pool connection (kHello handshake sent) and starts the
  // pump + engine. Throws util::CheckError when a connection cannot be
  // established.
  void Start();

  // Joins the pump and drains the engine. Safe to call twice; called by
  // the destructor. Returns once no pool thread can touch a socket again.
  void Stop();

  int connection_count() const;
  int worker_count() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace fl

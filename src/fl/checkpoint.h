// Crash-safe on-disk checkpoints for resumable simulation runs.
//
// Container format ("AFCK"), little-endian:
//
//   magic   "AFCK"                        4 bytes
//   u32     format version (currently 2: v1 + per-update observability
//           sidecar — trace id, codec, wire bytes — in buffered updates)
//   u64     payload size in bytes
//   u64     FNV-1a checksum of the payload
//   bytes   payload — Simulation::SaveState output; model parameters inside
//           it use the AFPM framing shared with nn/serialize and the net/
//           wire protocol
//
// Files are written atomically (temp + fsync + rename, via
// util::serial::AtomicWriteFile), so a crash mid-write leaves the previous
// checkpoint intact. Version bumps are append-only at the container level:
// readers reject versions they do not know rather than guessing.
//
// Restoring into a Simulation built from the same ExperimentSpec resumes
// the run bit-identically — the final SimulationResult matches an
// uninterrupted run exactly (timing fields excepted).
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "fl/simulation.h"

namespace fl {

inline constexpr std::uint32_t kCheckpointVersion = 2;

// Serializes `sim` (which must be at a round boundary — Run() calls this
// between rounds) and writes it crash-safely to `path`. Throws
// util::CheckError on I/O failure.
void SaveCheckpoint(const std::string& path, const Simulation& sim);

// Restores `sim` from `path`. Returns false when no checkpoint exists at
// `path` (fresh start); throws util::CheckError on a corrupt file, a
// version mismatch, or a checkpoint taken from a different experiment
// (seed/population/model/defense are verified before any state changes).
bool RestoreCheckpoint(const std::string& path, Simulation& sim);

// The in-memory form behind RestoreCheckpoint: parses one AFCK container
// from `bytes` (magic, version, declared payload size, FNV-1a checksum)
// and restores `sim` from its payload. Throws util::CheckError on any
// malformed input — truncation, version mismatch, checksum failure, or a
// payload the simulation rejects — without reading out of bounds. This is
// also the fuzzing entry point for the checkpoint surface (fuzz/).
void RestoreCheckpointBytes(std::span<const std::uint8_t> bytes,
                            Simulation& sim);

// True when `path` names an existing regular file (the sweep driver's
// cheap "is there anything to resume" probe).
bool CheckpointExists(const std::string& path);

}  // namespace fl

#include "fl/experiment.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <numeric>

#include "compress/codec.h"
#include "core/async_filter.h"
#include "data/partition.h"
#include "defense/registry.h"
#include "fl/checkpoint.h"
#include "util/check.h"

namespace fl {
namespace {

// Static-library builds only pull async_filter.o into a link when one of
// its symbols is referenced; this reference makes the AsyncFilter registry
// entries available wherever the experiment layer is linked.
const bool kAsyncFilterLinked = [] {
  core::EnsureAsyncFilterRegistered();
  return true;
}();

}  // namespace

const char* TransportKindName(TransportKind kind) {
  switch (kind) {
    case TransportKind::kInproc:
      return "inproc";
    case TransportKind::kTcp:
      return "tcp";
    case TransportKind::kShm:
      return "shm";
  }
  return "?";
}

TransportKind ParseTransportKind(const std::string& name) {
  std::string canon;
  for (char c : name) {
    canon.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (canon == "inproc" || canon == "local" || canon == "threads") {
    return TransportKind::kInproc;
  }
  if (canon == "tcp" || canon == "net" || canon == "distributed") {
    return TransportKind::kTcp;
  }
  if (canon == "shm" || canon == "shared-memory") {
    return TransportKind::kShm;
  }
  AF_CHECK(false) << "unknown transport name: " << name
                  << " (expected inproc, tcp, or shm)";
  return TransportKind::kInproc;
}

const char* DefenseKindName(DefenseKind kind) {
  switch (kind) {
    case DefenseKind::kFedBuff:
      return "FedBuff";
    case DefenseKind::kFlDetector:
      return "FLDetector";
    case DefenseKind::kAsyncFilter:
      return "AsyncFilter";
    case DefenseKind::kAsyncFilter2Means:
      return "AsyncFilter-2means";
    case DefenseKind::kAsyncFilterDeferMid:
      return "AsyncFilter-defermid";
    case DefenseKind::kAsyncFilterRejectMid:
      return "AsyncFilter-rejectmid";
    case DefenseKind::kKrum:
      return "Krum";
    case DefenseKind::kMultiKrum:
      return "Multi-Krum";
    case DefenseKind::kTrimmedMean:
      return "Trimmed-Mean";
    case DefenseKind::kMedian:
      return "Median";
    case DefenseKind::kZenoPlusPlus:
      return "Zeno++";
    case DefenseKind::kAflGuard:
      return "AFLGuard";
    case DefenseKind::kNnm:
      return "NNM";
    case DefenseKind::kFlTrust:
      return "FLtrust";
    case DefenseKind::kBucketing:
      return "Bucketing";
  }
  return "?";
}

DefenseKind ParseDefenseKind(const std::string& name) {
  std::string canon;
  for (char c : name) {
    if (c == '-' || c == '_' || c == ' ' || c == '+') {
      continue;
    }
    canon.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (canon == "fedbuff" || canon == "nodefense" || canon == "none") {
    return DefenseKind::kFedBuff;
  }
  if (canon == "fldetector") {
    return DefenseKind::kFlDetector;
  }
  if (canon == "asyncfilter" || canon == "asyncfilter3means") {
    return DefenseKind::kAsyncFilter;
  }
  if (canon == "asyncfilter2means") {
    return DefenseKind::kAsyncFilter2Means;
  }
  if (canon == "asyncfilterdefermid") {
    return DefenseKind::kAsyncFilterDeferMid;
  }
  if (canon == "asyncfilterrejectmid") {
    return DefenseKind::kAsyncFilterRejectMid;
  }
  if (canon == "krum") {
    return DefenseKind::kKrum;
  }
  if (canon == "multikrum") {
    return DefenseKind::kMultiKrum;
  }
  if (canon == "trimmedmean") {
    return DefenseKind::kTrimmedMean;
  }
  if (canon == "median") {
    return DefenseKind::kMedian;
  }
  if (canon == "zeno" || canon == "zenoplusplus") {
    return DefenseKind::kZenoPlusPlus;
  }
  if (canon == "aflguard") {
    return DefenseKind::kAflGuard;
  }
  if (canon == "nnm") {
    return DefenseKind::kNnm;
  }
  if (canon == "fltrust") {
    return DefenseKind::kFlTrust;
  }
  if (canon == "bucketing" || canon.rfind("bucketing", 0) == 0) {
    return DefenseKind::kBucketing;
  }
  AF_CHECK(false) << "unknown defense name: " << name;
  return DefenseKind::kFedBuff;
}

std::unique_ptr<defense::Defense> MakeDefense(DefenseKind kind) {
  // One source of truth: the enum's display name resolves through the same
  // canonicalization the registry applies, so the grid enum and the
  // string-keyed path can never drift apart.
  return defense::Make(DefenseKindName(kind));
}

nn::ModelSpec ModelForProfile(const data::Profile profile,
                              std::size_t image_side) {
  switch (profile) {
    case data::Profile::kMnist:
    case data::Profile::kFashionMnist:
      return nn::MakeLeNet5Surrogate(image_side);
    case data::Profile::kCifar10:
    case data::Profile::kCinic10:
      return nn::MakeVggSurrogate(image_side);
  }
  AF_CHECK(false) << "unhandled profile";
  return nn::MakeLeNet5Surrogate(image_side);
}

ExperimentConfig MakeDefaultConfig(data::Profile profile, std::uint64_t seed) {
  ExperimentConfig config;
  config.profile = profile;
  config.sim.seed = seed;
  // Paper Table 1 with the repo's CPU scaling: partition sizes shrink by the
  // same ratio everywhere (CIFAR/CINIC clients keep the larger share), local
  // epochs and batch flavour follow the paper.
  config.sim.local.epochs = 5;
  switch (profile) {
    case data::Profile::kMnist:
      config.partition_size = 80;
      config.sim.local.batch_size = 32;
      config.sim.local.optimizer = {nn::OptimizerKind::kSgd, 0.01, 0.9, 0.0};
      break;
    case data::Profile::kFashionMnist:
      config.partition_size = 100;
      config.sim.local.batch_size = 32;
      config.sim.local.optimizer = {nn::OptimizerKind::kSgd, 0.01, 0.9, 0.0};
      break;
    case data::Profile::kCifar10:
      // 8×8 colour images keep the VGG surrogate CPU-tractable.
      config.image_side = 8;
      config.partition_size = 120;
      config.sim.local.batch_size = 64;
      config.sim.local.optimizer = {nn::OptimizerKind::kAdam, 0.0015, 0.0, 0.0};
      break;
    case data::Profile::kCinic10:
      config.image_side = 8;
      config.partition_size = 120;
      config.sim.local.batch_size = 64;
      config.sim.local.optimizer = {nn::OptimizerKind::kAdam, 0.0015, 0.0, 0.0};
      break;
  }
  return config;
}

SimulationResult RunExperiment(const ExperimentConfig& config,
                               Simulation::BufferObserver observer) {
  AF_CHECK_GT(config.num_clients, 0u);
  AF_CHECK_LE(config.num_malicious, config.num_clients);
  if (!config.compress.empty()) {
    compress::Get(config.compress);  // fail fast on unknown codec names
  }

  const auto wall_start = std::chrono::steady_clock::now();
  auto stamp_wall = [wall_start](SimulationResult result) {
    result.wall_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();
    return result;
  };

  util::RngFactory rngs(config.sim.seed);

  // Dataset: a centralized pool plus a held-out test set from the same
  // generator (same prototypes), mirroring the paper's "collected as a
  // centralized dataset then partitioned" setup.
  data::SyntheticSpec spec =
      data::MakeProfileSpec(config.profile, config.image_side);
  data::SyntheticGenerator generator(spec, config.sim.seed);
  data::Dataset train = generator.Generate(config.train_pool, "train");
  data::Dataset test = generator.Generate(config.test_samples, "test");

  auto partition_rng = rngs.Stream("partition");
  data::Partition partition =
      config.iid ? data::IidPartition(train, config.num_clients,
                                      config.partition_size, partition_rng)
                 : data::DirichletPartition(train, config.num_clients,
                                            config.partition_size,
                                            config.dirichlet_alpha,
                                            partition_rng);

  nn::ModelSpec model = ModelForProfile(config.profile, config.image_side);

  // Malicious subset (paper: sampled from the whole pool).
  std::vector<int> ids(config.num_clients);
  std::iota(ids.begin(), ids.end(), 0);
  auto malicious_rng = rngs.Stream("malicious");
  std::shuffle(ids.begin(), ids.end(), malicious_rng);
  std::vector<int> malicious_ids(ids.begin(), ids.begin() + config.num_malicious);
  if (config.attack == attacks::AttackKind::kNone) {
    malicious_ids.clear();
  }
  std::vector<bool> is_malicious(config.num_clients, false);
  for (int id : malicious_ids) {
    is_malicious[static_cast<std::size_t>(id)] = true;
  }

  // Label-flip is data-level poisoning: malicious clients train honestly on
  // a label-rotated view of the pool (l → (l+1) mod C).
  data::Dataset train_flipped;
  const bool label_flip = config.attack == attacks::AttackKind::kLabelFlip;
  if (label_flip) {
    train_flipped = train;
    for (auto& label : train_flipped.labels) {
      label = (label + 1) % static_cast<std::int64_t>(train.num_classes);
    }
  }

  std::vector<std::unique_ptr<Client>> clients;
  clients.reserve(config.num_clients);
  for (std::size_t c = 0; c < config.num_clients; ++c) {
    const data::Dataset* view =
        (label_flip && is_malicious[c]) ? &train_flipped : &train;
    clients.push_back(std::make_unique<Client>(
        static_cast<int>(c), view, std::move(partition[c]), model,
        config.sim.seed));
  }

  attacks::AttackParams attack_params;
  attack_params.total_clients = config.num_clients;
  attack_params.adaptive_score_quantile = config.adaptive_score_quantile;
  attack_params.malicious_clients = std::max<std::size_t>(
      config.num_malicious, 1);
  attack_params.gd_scale = config.gd_scale;
  auto attack = attacks::MakeAttack(config.attack, attack_params);
  auto defense = config.defense_factory ? config.defense_factory()
                                        : MakeDefense(config.defense);
  AF_CHECK(defense != nullptr) << "defense factory returned null";

  data::Dataset root;
  if (defense->RequiresServerReference()) {
    root = generator.Generate(config.sim.server_root_samples, "server-root");
  }

  if (config.transport != TransportKind::kInproc) {
    // The distributed driver owns scheduling end to end; the buffer observer
    // hook is an in-process-only affordance, and checkpointing mid-run
    // worker state is not supported over the wire.
    AF_CHECK(observer == nullptr)
        << "buffer observers are not supported with --transport=tcp/shm";
    AF_CHECK(config.checkpoint_path.empty() && !config.resume)
        << "checkpoint/resume requires --transport=inproc";
    DistributedSpec dist_spec;
    dist_spec.sim = config.sim;
    dist_spec.model = model;
    dist_spec.clients = std::move(clients);
    dist_spec.malicious_ids = malicious_ids;
    dist_spec.attack = std::move(attack);
    dist_spec.defense = std::move(defense);
    dist_spec.test_set = &test;
    dist_spec.server_root = std::move(root);
    dist_spec.transport = config.net;
    dist_spec.transport.codec = config.compress;
    dist_spec.transport.shm = config.transport == TransportKind::kShm;
    dist_spec.pool = config.pool;
    DistributedDriver driver(std::move(dist_spec));
    return stamp_wall(driver.Run());
  }

  util::ThreadPool pool(config.threads);
  ExperimentSpec sim_spec;
  sim_spec.sim = config.sim;
  sim_spec.model = model;
  sim_spec.clients = std::move(clients);
  sim_spec.pool = &pool;
  sim_spec.malicious_ids = std::move(malicious_ids);
  sim_spec.attack = std::move(attack);
  sim_spec.defense = std::move(defense);
  sim_spec.test_set = &test;
  sim_spec.server_root = std::move(root);
  sim_spec.codec = config.compress;
  auto simulation = BuildSimulation(std::move(sim_spec));
  if (observer) {
    simulation->SetBufferObserver(std::move(observer));
  }
  if (!config.checkpoint_path.empty() || config.stop_flag != nullptr) {
    CheckpointPolicy policy;
    policy.path = config.checkpoint_path;
    policy.every = config.checkpoint_every;
    policy.stop = config.stop_flag;
    simulation->SetCheckpointPolicy(std::move(policy));
  }
  if (config.resume) {
    AF_CHECK(!config.checkpoint_path.empty())
        << "--resume needs a checkpoint path";
    RestoreCheckpoint(config.checkpoint_path, *simulation);
  }
  return stamp_wall(simulation->Run());
}

std::vector<double> RunRepeated(ExperimentConfig config,
                                const std::vector<std::uint64_t>& seeds) {
  std::vector<double> accuracies;
  accuracies.reserve(seeds.size());
  for (std::uint64_t seed : seeds) {
    config.sim.seed = seed;
    accuracies.push_back(RunExperiment(config).final_accuracy);
  }
  return accuracies;
}

}  // namespace fl

// Distributed run mode: the same FedBuff + Defense server loop, but with
// every local-training job round-tripped over a real TCP connection.
//
// Topology (all loopback, one process):
//
//   driver thread                         client fleet (ClientPoolSpec)
//   ─────────────                         ──────────────────────────────
//   net::Server (epoll reactor) ◀─ TCP ─▶ kReal: one thread + connection
//   Simulation + TcpBackend               per client (blocking I/O)
//   sharded staging → defense             kVirtual: VirtualClientPool —
//                                         few connections, worker crew
//
// Training jobs carry the same (client_id, job_index)-keyed RNG streams as
// the in-process simulator, so with a quiet wire a tcp run is
// bit-identical to an inproc run of the same config — in either fleet
// mode. The wire is allowed to be hostile in kReal mode: a
// net::FaultInjector on each client's uplink can drop, delay, duplicate,
// or truncate frames and kill connections outright; the server evicts the
// dead and keeps aggregating from the survivors. Virtual pools forbid
// fault injection (updates are sent exactly once).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "attacks/attack.h"
#include "defense/defense.h"
#include "fl/client.h"
#include "fl/client_pool.h"
#include "fl/simulation.h"
#include "net/fault_injector.h"
#include "net/shm_ring.h"
#include "net/socket.h"

namespace fl {

struct TransportOptions {
  std::uint16_t port = 0;      // 0 → ephemeral loopback port
  int io_timeout_ms = 10000;   // per-connection stalled-I/O guard
  int job_timeout_ms = 120000; // evict a client that never answers a job
  int ack_timeout_ms = 250;    // client resend timer for unacked updates
  int handshake_timeout_ms = 10000;
  // Reactor shards for the server's event loop: 1 (default) is fully
  // deterministic; <=0 picks one per core capped at 8. Results are
  // shard-count-invariant either way (updates land by job position).
  int reactor_shards = 1;
  net::RetryConfig retry;      // connect retry + update resend backoff
  net::FaultConfig faults;     // wire fault injection (off by default)
  // Update-compression codec name (compress/codec.h). Empty → no codec
  // negotiation, legacy wire bytes. Non-empty (including "identity") makes
  // the server advertise it; clients pick it during the handshake, encode
  // uplink deltas with it, and broadcast-safe codecs also compress the
  // downlink. Delta-only codecs (int8, topk-delta) fall back to identity
  // for broadcasts.
  std::string codec;
  // Trace-context propagation: the server offers it during the handshake
  // and, for clients that accept, stamps each job's broadcast with a
  // deterministic trace id (fl/trace_context.h) that the client echoes on
  // its update. Ids are pure functions of (seed, client, job), so enabling
  // this never perturbs results. Off → legacy wire bytes.
  bool trace_context = false;
  // Shared-memory rings (--transport=shm): the server offers each client an
  // mmap'd two-ring segment after its hello; data frames then bypass the
  // socket entirely. The frame bytes on the rings are identical to the TCP
  // bytes, so results stay bit-identical across transports. Workers with
  // fault injection configured decline the offer (faults act on the
  // socket), and any mapping failure falls back to TCP per connection.
  // Multiplexed (virtual-pool) connections are never offered rings.
  bool shm = false;
  std::size_t shm_ring_bytes = net::kShmDefaultRingBytes;
};

// Everything a distributed run needs, in one bag — the mirror of
// ExperimentSpec for the over-the-wire mode. `pool` picks how the client
// fleet executes (ClientPoolSpec in fl/client_pool.h).
struct DistributedSpec {
  SimulationConfig sim;
  nn::ModelSpec model;
  std::vector<std::unique_ptr<Client>> clients;
  std::vector<int> malicious_ids;
  std::unique_ptr<attacks::Attack> attack;
  std::unique_ptr<defense::Defense> defense;
  const data::Dataset* test_set = nullptr;
  data::Dataset server_root;
  TransportOptions transport;
  ClientPoolSpec pool;
};

class DistributedDriver {
 public:
  explicit DistributedDriver(DistributedSpec spec);

  ~DistributedDriver();

  DistributedDriver(const DistributedDriver&) = delete;
  DistributedDriver& operator=(const DistributedDriver&) = delete;

  // Brings the fleet up, runs the full simulation over the wire, shuts the
  // fleet down. Throws util::CheckError when the fleet cannot start (e.g.
  // no client completes the handshake) or when the spec is inconsistent
  // (fault injection on a virtual pool).
  SimulationResult Run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace fl

#include "fl/trace.h"

#include "util/csv.h"

namespace fl {

void WriteRoundTraceCsv(const SimulationResult& result,
                        const std::string& path) {
  util::CsvWriter csv(path);
  csv.WriteHeader({"round", "sim_time", "test_accuracy", "buffered",
                   "accepted", "rejected", "deferred", "dropped_stale",
                   "mean_staleness", "defense_micros", "true_positive", "false_positive",
                   "true_negative", "false_negative"});
  for (const auto& r : result.rounds) {
    csv.WriteRow({std::to_string(r.round), util::FormatFixed(r.sim_time, 4),
                  r.test_accuracy >= 0.0
                      ? util::FormatFixed(r.test_accuracy, 4)
                      : std::string{},
                  std::to_string(r.buffered), std::to_string(r.accepted),
                  std::to_string(r.rejected), std::to_string(r.deferred),
                  std::to_string(r.dropped_stale),
                  util::FormatFixed(r.mean_staleness, 3),
                  std::to_string(r.defense_micros),
                  std::to_string(r.confusion.true_positive),
                  std::to_string(r.confusion.false_positive),
                  std::to_string(r.confusion.true_negative),
                  std::to_string(r.confusion.false_negative)});
  }
}

void WriteSummaryCsv(const SimulationResult& result, const std::string& path) {
  util::CsvWriter csv(path);
  csv.WriteHeader({"final_accuracy", "rounds", "total_dropped_stale",
                   "detection_precision", "detection_recall",
                   "defense_total_micros", "defense_p50_micros",
                   "defense_p95_micros", "defense_p99_micros"});
  csv.WriteRow({util::FormatFixed(result.final_accuracy, 4),
                std::to_string(result.rounds.size()),
                std::to_string(result.total_dropped_stale),
                util::FormatFixed(result.total_confusion.Precision(), 4),
                util::FormatFixed(result.total_confusion.Recall(), 4),
                std::to_string(result.defense_latency.total_micros),
                util::FormatFixed(result.defense_latency.p50_micros, 1),
                util::FormatFixed(result.defense_latency.p95_micros, 1),
                util::FormatFixed(result.defense_latency.p99_micros, 1)});
}

}  // namespace fl

// One-call experiment runner: dataset → partition → clients → attack →
// defense → simulation. Every bench and example builds on this.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "attacks/registry.h"
#include "data/synthetic.h"
#include "defense/defense.h"
#include "fl/distributed.h"
#include "fl/simulation.h"

namespace fl {

// How local training jobs are executed: in-process thread-pool waves,
// client workers behind a loopback TCP transport, or the same workers with
// data frames on shared-memory rings (see docs/NETWORK.md). All three are
// bit-identical for a given config.
enum class TransportKind {
  kInproc,
  kTcp,
  kShm,  // tcp handshake + control, mmap'd rings for data frames
};

const char* TransportKindName(TransportKind kind);
TransportKind ParseTransportKind(const std::string& name);

// Defense selection for the experiment grid.
enum class DefenseKind {
  kFedBuff,           // NoDefense baseline
  kFlDetector,        // synchronous SOTA baseline
  kAsyncFilter,       // the paper's method (3-means, mid band aggregated)
  kAsyncFilter2Means, // Fig. 7 ablation
  kAsyncFilterDeferMid,   // mid-band policy ablation
  kAsyncFilterRejectMid,  // mid-band policy ablation
  kKrum,
  kMultiKrum,
  kTrimmedMean,
  kMedian,
  kZenoPlusPlus,
  kAflGuard,
  kNnm,
  kFlTrust,
  kBucketing,  // Bucketing(2) + coordinate median
};

const char* DefenseKindName(DefenseKind kind);
DefenseKind ParseDefenseKind(const std::string& name);
std::unique_ptr<defense::Defense> MakeDefense(DefenseKind kind);

struct ExperimentConfig {
  // Workload.
  data::Profile profile = data::Profile::kFashionMnist;
  std::size_t image_side = 12;  // profile-dependent default via MakeDefaultConfig
  std::size_t train_pool = 6000;   // centralized samples partitions draw from
  std::size_t test_samples = 1000;
  std::size_t partition_size = 100;
  double dirichlet_alpha = 0.1;
  bool iid = false;

  // Population.
  std::size_t num_clients = 100;
  std::size_t num_malicious = 20;

  // Attack / defense.
  attacks::AttackKind attack = attacks::AttackKind::kNone;
  double gd_scale = 1.5;
  double adaptive_score_quantile = 0.9;
  DefenseKind defense = DefenseKind::kAsyncFilter;
  // When set, overrides `defense`: lets callers plug a custom Defense
  // implementation (the "plug-and-play" API surface; see
  // examples/custom_defense.cpp and the score-normalisation ablation).
  std::function<std::unique_ptr<defense::Defense>()> defense_factory;

  // Async mechanics + local training.
  SimulationConfig sim;

  // Execution.
  std::size_t threads = 0;  // 0 → hardware concurrency
  TransportKind transport = TransportKind::kInproc;
  TransportOptions net;  // only consulted when transport == kTcp
  // Client fleet shape for distributed transports: real threads (default)
  // or a multiplexed virtual pool (fl/client_pool.h). Ignored inproc.
  ClientPoolSpec pool;

  // Update-compression codec (compress/codec.h registry name; empty →
  // none). Over tcp the codec is negotiated and applied on the wire; inproc
  // runs mirror the same lossy round trip, so the two transports stay
  // bit-identical under the same setting. Also compresses checkpoint model
  // pools for broadcast-safe codecs.
  std::string compress;

  // Resumable runs (inproc transport only; see fl/checkpoint.h). When
  // `checkpoint_path` is set the simulation writes a crash-safe checkpoint
  // every `checkpoint_every` completed rounds (0 → only on a stop request),
  // and `resume` restores from an existing checkpoint before running.
  // `stop_flag`, typically flipped by a SIGTERM handler, requests a final
  // checkpoint and a graceful early return.
  std::string checkpoint_path;
  std::size_t checkpoint_every = 0;
  bool resume = false;
  const std::atomic<bool>* stop_flag = nullptr;
};

// Paper-matched defaults per dataset profile (model family, optimizer — see
// Table 1 — and our scaled partition sizes). `seed` feeds data generation,
// partitioning, initial model, and the simulator.
ExperimentConfig MakeDefaultConfig(data::Profile profile, std::uint64_t seed);

// The model family a profile trains (LeNet surrogate vs VGG surrogate).
nn::ModelSpec ModelForProfile(const data::Profile profile,
                              std::size_t image_side);

// Runs one experiment end to end. `observer`, when set, sees every
// aggregation buffer (Fig. 3/4 study).
SimulationResult RunExperiment(const ExperimentConfig& config,
                               Simulation::BufferObserver observer = nullptr);

// Convenience: run the same config across seeds; returns final accuracies.
std::vector<double> RunRepeated(ExperimentConfig config,
                                const std::vector<std::uint64_t>& seeds);

}  // namespace fl

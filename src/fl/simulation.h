// Discrete-event asynchronous federated learning simulator.
//
// Plays the role PLATO plays in the paper: clients train continuously, the
// server aggregates FedBuff-style whenever the buffer reaches the minimum
// aggregation bound, staleness arises naturally from Zipf-distributed client
// latencies, and the attached Defense decides what enters each aggregate.
//
// Timing is independent of training results, so arrivals between two
// aggregations are popped first and their local training runs as one
// parallel batch — bit-deterministic because every job draws from an RNG
// stream derived from (seed, client, job index), and same-client jobs are
// serialised into waves.
#pragma once

#include <functional>
#include <memory>
#include <queue>

#include "attacks/attack.h"
#include "attacks/coordinator.h"
#include "defense/defense.h"
#include "fl/client.h"
#include "fl/metrics.h"
#include "fl/types.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace fl {

struct SimulationConfig {
  std::size_t buffer_goal = 40;     // minimum aggregation bound Ω
  std::size_t staleness_limit = 20; // server rejects staler arrivals
  double zipf_s = 1.2;              // client speed heterogeneity
  double base_latency = 1.0;        // fastest client's job duration
  // FedAsync-style server mixing rate: w ← w + server_lr · aggregate.
  double server_learning_rate = 1.0;
  // Probability that a client starts its next job immediately after
  // reporting; otherwise it rests for one latency period first (models
  // devices that drop out of sampling rounds).
  double participation = 1.0;
  std::size_t rounds = 40;
  LocalTrainConfig local;
  std::size_t eval_every = 1;
  std::uint64_t seed = 1;
  std::size_t attacker_window = 20; // colluder knowledge pool size
  // Aggregation-weight staleness discount (FedBuff's 1/sqrt(1+tau) default).
  defense::StalenessWeightingConfig staleness_weighting;
  // Root-dataset size for clean-dataset defenses (Zeno++/AFLGuard); the
  // simulator only provisions it when the defense requires a reference.
  std::size_t server_root_samples = 128;
};

class Simulation {
 public:
  // `clients` are all participants; ids in `malicious_ids` route their
  // reports through `attack`. `defense` decides aggregation. `server_root`
  // may be empty unless the defense requires a server reference update.
  Simulation(SimulationConfig config, const nn::ModelSpec& spec,
             std::vector<std::unique_ptr<Client>> clients,
             std::vector<int> malicious_ids,
             std::unique_ptr<attacks::Attack> attack,
             std::unique_ptr<defense::Defense> defense,
             const data::Dataset* test_set, data::Dataset server_root,
             util::ThreadPool* pool);

  // Optional observer invoked with the full buffer just before each
  // aggregation (used by the Fig. 3/4 t-SNE study).
  using BufferObserver =
      std::function<void(std::size_t round, const std::vector<ModelUpdate>&)>;
  void SetBufferObserver(BufferObserver observer) {
    observer_ = std::move(observer);
  }

  SimulationResult Run();

  const defense::Defense& defense() const { return *defense_; }

 private:
  struct Job {
    double completion_time = 0.0;
    int client_id = -1;
    std::size_t dispatch_round = 0;
    std::uint64_t job_index = 0;  // per-client counter, keys the RNG stream
    std::shared_ptr<const std::vector<float>> base;
  };
  struct JobLater {
    bool operator()(const Job& a, const Job& b) const {
      if (a.completion_time != b.completion_time) {
        return a.completion_time > b.completion_time;
      }
      return a.client_id > b.client_id;  // deterministic tie-break
    }
  };

  void Dispatch(int client_id, double now);
  bool IsMalicious(int client_id) const;
  // Trains all jobs of `batch` in parallel waves; honest deltas by position.
  std::vector<std::vector<float>> TrainBatch(const std::vector<Job>& batch);
  std::vector<float> ServerReferenceUpdate();

  SimulationConfig config_;
  nn::ModelSpec spec_;  // copied: the simulation outlives caller temporaries
  std::vector<std::unique_ptr<Client>> clients_;
  std::vector<bool> malicious_;
  std::unique_ptr<attacks::Attack> attack_;
  attacks::Coordinator coordinator_;
  std::unique_ptr<defense::Defense> defense_;
  const data::Dataset* test_set_;
  data::Dataset server_root_;
  std::unique_ptr<Client> server_trainer_;  // for clean-dataset defenses
  util::ThreadPool* pool_;

  util::RngFactory rngs_;
  std::mt19937_64 participation_rng_;
  std::vector<double> latencies_;
  std::vector<std::uint64_t> job_counters_;
  std::priority_queue<Job, std::vector<Job>, JobLater> events_;
  std::shared_ptr<const std::vector<float>> global_;
  std::size_t round_ = 0;
  BufferObserver observer_;
};

}  // namespace fl

// Discrete-event asynchronous federated learning server loop.
//
// Plays the role PLATO plays in the paper: clients train continuously, the
// server aggregates FedBuff-style whenever the buffer reaches the minimum
// aggregation bound, staleness arises naturally from Zipf-distributed client
// latencies, and the attached Defense decides what enters each aggregate.
//
// Timing is independent of training results, so arrivals between two
// aggregations are popped first and their local training runs as one batch
// through a TrainBackend — the thread-pool inproc backend or the TCP
// distributed backend (fl/distributed.h). Both are bit-deterministic
// because every job draws from an RNG stream derived from
// (seed, client, job index).
//
// Clients can disappear mid-round (a TCP client dropping its connection):
// the backend reports their jobs as lost, the server logs the eviction,
// stops scheduling them, and keeps aggregating from the survivors.
//
// Runs are resumable: the complete mid-run state (event queue, RNG stream
// positions, deferred buffer, defense state, round records) serializes
// through SaveState/LoadState, and fl/checkpoint.h wraps that in a
// crash-safe on-disk format. A run checkpointed, killed, and restored
// produces a bit-identical SimulationResult to one that ran straight
// through.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <queue>

#include "attacks/attack.h"
#include "attacks/coordinator.h"
#include "defense/defense.h"
#include "fl/backend.h"
#include "fl/client.h"
#include "fl/metrics.h"
#include "fl/types.h"
#include "util/rng.h"
#include "util/serial.h"
#include "util/thread_pool.h"

namespace fl {

struct SimulationConfig {
  std::size_t buffer_goal = 40;     // minimum aggregation bound Ω
  std::size_t staleness_limit = 20; // server rejects staler arrivals
  double zipf_s = 1.2;              // client speed heterogeneity
  double base_latency = 1.0;        // fastest client's job duration
  // FedAsync-style server mixing rate: w ← w + server_lr · aggregate.
  double server_learning_rate = 1.0;
  // Probability that a client starts its next job immediately after
  // reporting; otherwise it rests for one latency period first (models
  // devices that drop out of sampling rounds).
  double participation = 1.0;
  std::size_t rounds = 40;
  LocalTrainConfig local;
  std::size_t eval_every = 1;
  std::uint64_t seed = 1;
  std::size_t attacker_window = 20; // colluder knowledge pool size
  // Aggregation-weight staleness discount (FedBuff's 1/sqrt(1+tau) default).
  defense::StalenessWeightingConfig staleness_weighting;
  // Root-dataset size for clean-dataset defenses (Zeno++/AFLGuard); the
  // simulator only provisions it when the defense requires a reference.
  std::size_t server_root_samples = 128;
};

// Everything a Simulation is built from, by name. Exactly one execution
// form must be set:
//   * `backend` — a caller-owned TrainBackend that outlives the simulation
//     (the tcp transport uses this), with `clients` empty; or
//   * `clients` + `pool` — the simulation owns an InprocBackend over the
//     clients, executed on the caller-owned thread pool.
// `malicious_ids` route their reports through `attack`; `defense` decides
// aggregation; `server_root` may be empty unless the defense declares
// RequiresServerReference().
struct ExperimentSpec {
  SimulationConfig sim;
  nn::ModelSpec model;

  // Execution (pick one form).
  TrainBackend* backend = nullptr;
  std::vector<std::unique_ptr<Client>> clients;
  util::ThreadPool* pool = nullptr;

  // Adversary.
  std::vector<int> malicious_ids;
  std::unique_ptr<attacks::Attack> attack;

  // Server policy.
  std::unique_ptr<defense::Defense> defense;

  // Datasets: held-out evaluation set (required, caller-owned) and the
  // server's simulated clean root (owned by the simulation; only needed for
  // clean-dataset defenses).
  const data::Dataset* test_set = nullptr;
  data::Dataset server_root;

  // Update-compression codec name (compress/codec.h); empty or "identity"
  // → none. Only meaningful with the clients+pool form: the owned
  // InprocBackend mirrors the wire's lossy round trip, and checkpoint model
  // pools are written through the codec (broadcast-safe codecs only). The
  // tcp transport compresses on the wire itself, so DistributedDriver
  // leaves this empty.
  std::string codec;
};

// Crash-safe checkpointing during Run() (see fl/checkpoint.h for the
// on-disk format). With an empty path nothing is ever written; `stop` lets
// a signal handler request a final checkpoint + graceful early return.
struct CheckpointPolicy {
  std::string path;       // checkpoint file; empty → checkpointing disabled
  std::size_t every = 0;  // write every N completed rounds (0 → only on stop)
  const std::atomic<bool>* stop = nullptr;  // graceful-stop request flag
};

class Simulation {
 public:
  // The one constructor: named fields instead of positional soup. (The
  // deprecated positional forms completed their one-release grace period
  // and are gone.)
  explicit Simulation(ExperimentSpec spec);

  // Optional observer invoked with the full buffer just before each
  // aggregation (used by the Fig. 3/4 t-SNE study).
  using BufferObserver =
      std::function<void(std::size_t round, const std::vector<ModelUpdate>&)>;
  void SetBufferObserver(BufferObserver observer) {
    observer_ = std::move(observer);
  }

  void SetCheckpointPolicy(CheckpointPolicy policy) {
    checkpoint_ = std::move(policy);
  }

  SimulationResult Run();

  // Checkpoint payload: serializes/restores the complete mid-run state at a
  // round boundary (global model, event queue, per-client job counters, RNG
  // stream positions, deferred buffer, attacker window, defense state,
  // per-round records). LoadState must run on a Simulation built from the
  // same ExperimentSpec (seed, population, model, defense) — the framing in
  // fl/checkpoint.h verifies that before any state is touched.
  void SaveState(util::serial::Writer& w) const;
  void LoadState(util::serial::Reader& r);

  // Rounds completed so far (== number of aggregations recorded).
  std::size_t current_round() const { return round_; }

  const defense::Defense& defense() const { return *defense_; }

 private:
  struct Job {
    double completion_time = 0.0;
    int client_id = -1;
    std::size_t dispatch_round = 0;
    std::uint64_t job_index = 0;  // per-client counter, keys the RNG stream
    std::shared_ptr<const std::vector<float>> base;
  };
  struct JobLater {
    bool operator()(const Job& a, const Job& b) const {
      if (a.completion_time != b.completion_time) {
        return a.completion_time > b.completion_time;
      }
      return a.client_id > b.client_id;  // deterministic tie-break
    }
  };

  void Init();
  void Dispatch(int client_id, double now);
  bool IsMalicious(int client_id) const;
  // Smaller of the configured aggregation bound and the surviving
  // population, so the loop still terminates after evictions.
  std::size_t EffectiveGoal() const;
  std::vector<float> ServerReferenceUpdate();
  // Writes a crash-safe checkpoint to checkpoint_.path.
  void WriteCheckpoint() const;

  SimulationConfig config_;
  nn::ModelSpec spec_;  // copied: the simulation outlives caller temporaries
  std::unique_ptr<TrainBackend> owned_backend_;  // inproc convenience form
  TrainBackend* backend_ = nullptr;
  // Codec for checkpoint model-pool blocks (registry singleton; null →
  // raw AFPM). LoadState sniffs, so it accepts either form regardless.
  const compress::Codec* checkpoint_codec_ = nullptr;
  std::vector<bool> malicious_;
  std::unique_ptr<attacks::Attack> attack_;
  attacks::Coordinator coordinator_;
  std::unique_ptr<defense::Defense> defense_;
  const data::Dataset* test_set_;
  data::Dataset server_root_;
  std::unique_ptr<Client> server_trainer_;  // for clean-dataset defenses

  util::RngFactory rngs_;
  std::mt19937_64 participation_rng_;
  std::mt19937_64 server_rng_;  // defense RNG; advances across rounds
  std::vector<double> latencies_;
  std::vector<std::uint64_t> job_counters_;
  std::priority_queue<Job, std::vector<Job>, JobLater> events_;
  std::shared_ptr<const std::vector<float>> global_;
  std::size_t round_ = 0;
  double now_ = 0.0;                    // simulated clock at last arrival
  std::vector<ModelUpdate> buffer_;     // deferred leftovers between rounds
  std::size_t dropped_this_round_ = 0;
  SimulationResult partial_;            // round records accumulated so far
  bool resumed_ = false;                // LoadState ran; skip initial kickoff
  CheckpointPolicy checkpoint_;
  BufferObserver observer_;
};

// Builds a simulation from a spec. The factory form keeps call sites
// allocation-agnostic (the engine is move-hostile: it hands out pointers to
// internal state through the backend).
std::unique_ptr<Simulation> BuildSimulation(ExperimentSpec spec);

}  // namespace fl

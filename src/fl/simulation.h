// Discrete-event asynchronous federated learning server loop.
//
// Plays the role PLATO plays in the paper: clients train continuously, the
// server aggregates FedBuff-style whenever the buffer reaches the minimum
// aggregation bound, staleness arises naturally from Zipf-distributed client
// latencies, and the attached Defense decides what enters each aggregate.
//
// Timing is independent of training results, so arrivals between two
// aggregations are popped first and their local training runs as one batch
// through a TrainBackend — the thread-pool inproc backend or the TCP
// distributed backend (fl/distributed.h). Both are bit-deterministic
// because every job draws from an RNG stream derived from
// (seed, client, job index).
//
// Clients can disappear mid-round (a TCP client dropping its connection):
// the backend reports their jobs as lost, the server logs the eviction,
// stops scheduling them, and keeps aggregating from the survivors.
#pragma once

#include <functional>
#include <memory>
#include <queue>

#include "attacks/attack.h"
#include "attacks/coordinator.h"
#include "defense/defense.h"
#include "fl/backend.h"
#include "fl/client.h"
#include "fl/metrics.h"
#include "fl/types.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace fl {

struct SimulationConfig {
  std::size_t buffer_goal = 40;     // minimum aggregation bound Ω
  std::size_t staleness_limit = 20; // server rejects staler arrivals
  double zipf_s = 1.2;              // client speed heterogeneity
  double base_latency = 1.0;        // fastest client's job duration
  // FedAsync-style server mixing rate: w ← w + server_lr · aggregate.
  double server_learning_rate = 1.0;
  // Probability that a client starts its next job immediately after
  // reporting; otherwise it rests for one latency period first (models
  // devices that drop out of sampling rounds).
  double participation = 1.0;
  std::size_t rounds = 40;
  LocalTrainConfig local;
  std::size_t eval_every = 1;
  std::uint64_t seed = 1;
  std::size_t attacker_window = 20; // colluder knowledge pool size
  // Aggregation-weight staleness discount (FedBuff's 1/sqrt(1+tau) default).
  defense::StalenessWeightingConfig staleness_weighting;
  // Root-dataset size for clean-dataset defenses (Zeno++/AFLGuard); the
  // simulator only provisions it when the defense requires a reference.
  std::size_t server_root_samples = 128;
};

class Simulation {
 public:
  // Transport-agnostic form: `backend` executes training jobs and must
  // outlive the simulation. Ids in `malicious_ids` route their reports
  // through `attack`. `defense` decides aggregation. `server_root` may be
  // empty unless the defense requires a server reference update.
  Simulation(SimulationConfig config, const nn::ModelSpec& spec,
             TrainBackend* backend, std::vector<int> malicious_ids,
             std::unique_ptr<attacks::Attack> attack,
             std::unique_ptr<defense::Defense> defense,
             const data::Dataset* test_set, data::Dataset server_root);

  // Convenience in-process form: owns an InprocBackend over `clients`
  // trained on `pool`. Behaviour is identical to the original
  // single-process simulator.
  Simulation(SimulationConfig config, const nn::ModelSpec& spec,
             std::vector<std::unique_ptr<Client>> clients,
             std::vector<int> malicious_ids,
             std::unique_ptr<attacks::Attack> attack,
             std::unique_ptr<defense::Defense> defense,
             const data::Dataset* test_set, data::Dataset server_root,
             util::ThreadPool* pool);

  // Optional observer invoked with the full buffer just before each
  // aggregation (used by the Fig. 3/4 t-SNE study).
  using BufferObserver =
      std::function<void(std::size_t round, const std::vector<ModelUpdate>&)>;
  void SetBufferObserver(BufferObserver observer) {
    observer_ = std::move(observer);
  }

  SimulationResult Run();

  const defense::Defense& defense() const { return *defense_; }

 private:
  struct Job {
    double completion_time = 0.0;
    int client_id = -1;
    std::size_t dispatch_round = 0;
    std::uint64_t job_index = 0;  // per-client counter, keys the RNG stream
    std::shared_ptr<const std::vector<float>> base;
  };
  struct JobLater {
    bool operator()(const Job& a, const Job& b) const {
      if (a.completion_time != b.completion_time) {
        return a.completion_time > b.completion_time;
      }
      return a.client_id > b.client_id;  // deterministic tie-break
    }
  };

  void Init();
  void Dispatch(int client_id, double now);
  bool IsMalicious(int client_id) const;
  // Smaller of the configured aggregation bound and the surviving
  // population, so the loop still terminates after evictions.
  std::size_t EffectiveGoal() const;
  std::vector<float> ServerReferenceUpdate();

  SimulationConfig config_;
  nn::ModelSpec spec_;  // copied: the simulation outlives caller temporaries
  std::unique_ptr<TrainBackend> owned_backend_;  // inproc convenience form
  TrainBackend* backend_;
  std::vector<bool> malicious_;
  std::unique_ptr<attacks::Attack> attack_;
  attacks::Coordinator coordinator_;
  std::unique_ptr<defense::Defense> defense_;
  const data::Dataset* test_set_;
  data::Dataset server_root_;
  std::unique_ptr<Client> server_trainer_;  // for clean-dataset defenses

  util::RngFactory rngs_;
  std::mt19937_64 participation_rng_;
  std::vector<double> latencies_;
  std::vector<std::uint64_t> job_counters_;
  std::priority_queue<Job, std::vector<Job>, JobLater> events_;
  std::shared_ptr<const std::vector<float>> global_;
  std::size_t round_ = 0;
  BufferObserver observer_;
};

}  // namespace fl

// Structured run telemetry: machine-readable JSON exports of a simulation,
// complementing the CSVs in fl/trace.h.
//
// JSONL (one JSON object per line, one line per aggregation round) is the
// format multidimensional-time-series consumers (FLANDERS-style detectors,
// pandas.read_json(lines=True), jq) ingest directly; the run summary JSON is
// what the bench harness embeds into its BENCH_<name>.json trajectory files.
#pragma once

#include <string>

#include "fl/metrics.h"

namespace fl {

// One line per round:
//   {"round":0,"sim_time":…,"test_accuracy":…|null,"buffered":…,
//    "accepted":…,"rejected":…,"deferred":…,"dropped_stale":…,
//    "mean_staleness":…,"defense_micros":…,
//    "staleness_histogram":{"0":12,"3":5,…},
//    "confusion":{"tp":…,"fp":…,"tn":…,"fn":…}}
void WriteRoundsJsonl(const SimulationResult& result, const std::string& path);

// The run-level summary as a single JSON object (final accuracy, confusion
// totals, precision/recall, defense-latency percentiles).
std::string RunSummaryJson(const SimulationResult& result);
void WriteRunSummaryJson(const SimulationResult& result,
                         const std::string& path);

}  // namespace fl

// Training-execution backends for the simulator.
//
// The discrete-event server loop in Simulation is transport-agnostic: it
// decides *which* client trains from *which* base model and *when*, and a
// TrainBackend decides *where* that training happens. The inproc backend
// runs jobs on a thread pool (the original single-process mode); the tcp
// backend in fl/distributed.cc round-trips each job through the net/ wire
// protocol. Both must be deterministic given (seed, client_id, job_index),
// which is what makes the two run modes bit-identical.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "compress/codec.h"
#include "fl/client.h"
#include "net/update_view.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace fl {

// One unit of local training: "client_id trains from `base`". job_index is
// the per-client job counter that keys the client's RNG stream.
struct TrainJob {
  int client_id = -1;
  std::uint64_t job_index = 0;
  std::size_t dispatch_round = 0;
  std::shared_ptr<const std::vector<float>> base;
};

class TrainBackend {
 public:
  virtual ~TrainBackend() = default;

  // Executes every job and returns the honest deltas by position, as
  // ref-counted views (the tcp backend materializes each wire payload once
  // into an arena; the inproc backend hands over the trained vectors with
  // no copy at all). An empty delta marks a lost job — the client
  // disconnected mid-round — and the simulator degrades gracefully
  // (aggregates from survivors).
  virtual std::vector<net::UpdateView> Train(
      const std::vector<TrainJob>& jobs) = 0;

  virtual std::size_t ClientCount() const = 0;
  virtual std::size_t NumSamples(int client_id) const = 0;

  // Liveness: evicted clients stop being scheduled. The inproc backend
  // never loses anyone.
  virtual bool IsAlive(int /*client_id*/) const { return true; }
  virtual std::size_t AliveCount() const { return ClientCount(); }

  // Wire provenance of the update a (client, job) produced — codec name and
  // encoded payload size. Backends with no wire return empty stats (the
  // inproc default); the tcp backend reports what actually crossed the
  // socket. Observability only: values land in the audit trail, never in
  // aggregation.
  struct WireStats {
    std::string codec;
    std::uint64_t wire_bytes = 0;
  };
  virtual WireStats UpdateWireStats(int /*client_id*/,
                                    std::uint64_t /*job_index*/) const {
    return {};
  }
};

// Thread-pool execution in the simulator's own process.
//
// When a compression codec is set, every job mirrors the tcp transport's
// lossy round trip — base params decode as a client would see them (for
// broadcast-safe codecs), the honest delta decodes as the server would
// receive it, with the same per-client error-feedback stream — so an inproc
// run stays bit-identical to a quiet-wire tcp run under the same
// --compress setting.
class InprocBackend : public TrainBackend {
 public:
  // `pool` must outlive the backend; `codec` (optional) is a process-lived
  // registry singleton.
  InprocBackend(std::vector<std::unique_ptr<Client>> clients,
                util::ThreadPool* pool, std::uint64_t seed,
                LocalTrainConfig local, const compress::Codec* codec = nullptr);

  std::vector<net::UpdateView> Train(
      const std::vector<TrainJob>& jobs) override;
  std::size_t ClientCount() const override { return clients_.size(); }
  std::size_t NumSamples(int client_id) const override;

 private:
  std::vector<std::unique_ptr<Client>> clients_;
  util::ThreadPool* pool_;
  util::RngFactory rngs_;
  LocalTrainConfig local_;
  const compress::Codec* codec_ = nullptr;  // null or identity → no-op
  std::vector<compress::FeedbackState> feedback_;  // per client, uplink only
};

}  // namespace fl

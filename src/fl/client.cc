#include "fl/client.h"

#include "nn/loss.h"
#include "obs/trace.h"
#include "util/check.h"

namespace fl {

Client::Client(int id, const data::Dataset* dataset,
               std::vector<std::size_t> partition, const nn::ModelSpec& spec,
               std::uint64_t model_seed)
    : id_(id),
      dataset_(dataset),
      partition_(std::move(partition)),
      model_(spec.factory(model_seed)) {
  AF_CHECK(dataset_ != nullptr);
  AF_CHECK(!partition_.empty()) << "client " << id << " has no data";
}

std::vector<float> Client::TrainOnce(std::span<const float> base_params,
                                     const LocalTrainConfig& config,
                                     std::mt19937_64& rng) {
  AF_TRACE_SPAN("client.train");
  model_->SetFlatParams(base_params);
  std::unique_ptr<nn::Optimizer> optimizer = nn::MakeOptimizer(config.optimizer);

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    const auto batches =
        data::MakeMiniBatches(partition_.size(), config.batch_size, rng);
    for (const auto& batch_slots : batches) {
      // Map batch slots (positions in the partition) to dataset indices.
      std::vector<std::size_t> indices;
      indices.reserve(batch_slots.size());
      for (std::size_t slot : batch_slots) {
        indices.push_back(partition_[slot]);
      }
      data::Batch batch = data::MakeBatch(*dataset_, indices);
      model_->ZeroGrads();
      tensor::Tensor logits = model_->Forward(batch.features);
      nn::LossResult loss = nn::SoftmaxCrossEntropy(logits, batch.labels);
      model_->Backward(loss.grad_logits);
      optimizer->Step(model_->Params(), model_->Grads());
    }
  }

  std::vector<float> delta = model_->GetFlatParams();
  AF_CHECK_EQ(delta.size(), base_params.size());
  for (std::size_t i = 0; i < delta.size(); ++i) {
    delta[i] -= base_params[i];
  }
  return delta;
}

double EvaluateAccuracy(const nn::ModelSpec& spec, nn::Sequential& model,
                        std::span<const float> params,
                        const data::Dataset& dataset, std::size_t batch_size) {
  AF_TRACE_SPAN("eval.batch_accuracy");
  AF_CHECK_GT(dataset.size(), 0u);
  AF_CHECK_EQ(dataset.num_classes, spec.num_classes);
  model.SetFlatParams(params);
  std::size_t correct = 0;
  std::vector<std::size_t> indices;
  for (std::size_t start = 0; start < dataset.size(); start += batch_size) {
    const std::size_t end = std::min(start + batch_size, dataset.size());
    indices.resize(end - start);
    for (std::size_t i = start; i < end; ++i) {
      indices[i - start] = i;
    }
    data::Batch batch = data::MakeBatch(dataset, indices);
    tensor::Tensor logits = model.Forward(batch.features);
    correct += nn::CountCorrect(logits, batch.labels);
  }
  return static_cast<double>(correct) / static_cast<double>(dataset.size());
}

}  // namespace fl

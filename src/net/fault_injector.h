// Seeded wire-fault injection for the distributed run mode.
//
// A FaultInjector sits on a client's uplink (the client → server data path)
// and decides, per outbound data frame, whether to deliver it, silently
// drop it, delay it, send it twice, or truncate it mid-frame and hard-close
// the connection. Independently, a configurable fraction of clients are
// "doomed": their connection dies permanently after a seeded number of
// data frames, exercising the server's mid-round eviction path.
//
// Everything is a pure function of (seed, client_id, frame sequence), so a
// faulty run is exactly reproducible.
#pragma once

#include <cstdint>
#include <random>

namespace net {

struct FaultConfig {
  double drop_prob = 0.0;       // frame silently not sent (sender retries)
  double delay_prob = 0.0;      // frame sent after `delay_ms`
  double duplicate_prob = 0.0;  // frame sent twice (receiver must dedup)
  double truncate_prob = 0.0;   // a frame prefix is sent, then hard-close
  // Fraction of clients whose connection is killed mid-run (per-client
  // Bernoulli draw, seeded — the doomed set is reproducible).
  double kill_fraction = 0.0;
  double delay_ms = 5.0;
  std::uint64_t seed = 1;

  bool Any() const {
    return drop_prob > 0.0 || delay_prob > 0.0 || duplicate_prob > 0.0 ||
           truncate_prob > 0.0 || kill_fraction > 0.0;
  }
};

class FaultInjector {
 public:
  enum class Action { kDeliver, kDrop, kDelay, kDuplicate, kTruncate };

  FaultInjector(const FaultConfig& config, int client_id);

  // Fate of the next outbound data frame. Draws are ordered
  // drop → truncate → duplicate → delay, each consuming one uniform.
  Action NextAction();

  double delay_ms() const { return config_.delay_ms; }

  // True when this client's connection is scheduled to die.
  bool doomed() const { return doomed_; }
  // Data-frame count after which a doomed connection hard-closes (≥ 1, so
  // every doomed client gets at least one update through first).
  std::uint64_t kill_after_frame() const { return kill_after_frame_; }

 private:
  FaultConfig config_;
  std::mt19937_64 rng_;
  bool doomed_ = false;
  std::uint64_t kill_after_frame_ = 0;
};

}  // namespace net

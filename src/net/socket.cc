#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <thread>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/rng.h"

namespace net {
namespace {

using Clock = std::chrono::steady_clock;

// Remaining milliseconds before `deadline`, clamped at 0; -1 when no
// deadline was requested.
int RemainingMs(bool has_deadline, Clock::time_point deadline) {
  if (!has_deadline) {
    return -1;
  }
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  return static_cast<int>(std::max<long long>(left, 0));
}

// Waits for `events` readiness; returns false when the deadline elapses
// first, throws on poll error.
bool AwaitReady(int fd, short events, bool has_deadline,
                Clock::time_point deadline) {
  pollfd pfd{fd, events, 0};
  const int timeout = RemainingMs(has_deadline, deadline);
  const int ready = ::poll(&pfd, 1, timeout);
  AF_CHECK_GE(ready, 0) << "poll failed: " << util::ErrnoMessage(errno);
  return ready > 0;
}

obs::Counter& BytesCounter(const char* direction) {
  return obs::DefaultRegistry().GetCounter("net.bytes",
                                           {{"direction", direction}});
}

}  // namespace

BackoffSchedule::BackoffSchedule(const RetryConfig& config,
                                 std::uint64_t seed)
    : config_(config) {
  std::uint64_t state = seed;
  rng_.seed(util::SplitMix64(state));
  Reset();
}

void BackoffSchedule::Reset() { prev_ms_ = config_.initial_backoff_ms; }

double BackoffSchedule::NextDelayMs() {
  const double base = config_.initial_backoff_ms;
  const double ceiling = std::min(
      config_.max_backoff_ms,
      std::max(base, prev_ms_ * std::max(config_.multiplier, 1.0)));
  if (ceiling <= base) {
    prev_ms_ = base;
    return prev_ms_;
  }
  std::uniform_real_distribution<double> dist(base, ceiling);
  prev_ms_ = dist(rng_);
  return prev_ms_;
}

Connection::Connection(util::UniqueFd fd) : fd_(std::move(fd)) {
  AF_CHECK(fd_.valid()) << "Connection built from invalid fd";
  // Non-blocking + poll() is what makes the send/recv deadlines real: a
  // blocking send() would ignore them whenever the kernel buffer fills.
  const int flags = ::fcntl(fd_.get(), F_GETFL, 0);
  AF_CHECK_GE(flags, 0) << "fcntl failed: " << util::ErrnoMessage(errno);
  AF_CHECK_GE(::fcntl(fd_.get(), F_SETFL, flags | O_NONBLOCK), 0)
      << "fcntl failed: " << util::ErrnoMessage(errno);
}

void Connection::SendBytes(std::span<const std::uint8_t> bytes,
                           int timeout_ms) {
  AF_CHECK(open()) << "send on closed connection";
  const bool has_deadline = timeout_ms >= 0;
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_NOSIGNAL: a peer that hard-closed must surface as EPIPE, not kill
    // the process with SIGPIPE.
    const ssize_t n = ::send(fd_.get(), bytes.data() + sent,
                             bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    AF_CHECK(n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                       errno == EINTR))
        << "send failed: " << util::ErrnoMessage(errno);
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      AF_CHECK(AwaitReady(fd_.get(), POLLOUT, has_deadline, deadline))
          << "write timed out";
    }
  }
  BytesCounter("sent").Increment(sent);
}

void Connection::SendFrame(const Frame& frame, int timeout_ms) {
  SendBytes(EncodeFrame(frame), timeout_ms);
  obs::DefaultRegistry()
      .GetCounter("net.frames_sent", {{"type", MessageTypeName(frame.type)}})
      .Increment();
}

Connection::RecvStatus Connection::TryRecvFrame(Frame* out, int timeout_ms) {
  AF_CHECK(open()) << "recv on closed connection";
  const bool has_deadline = timeout_ms >= 0;
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    const std::size_t consumed = DecodeFrame(inbox_, out);
    if (consumed > 0) {
      inbox_.erase(inbox_.begin(),
                   inbox_.begin() + static_cast<std::ptrdiff_t>(consumed));
      obs::DefaultRegistry()
          .GetCounter("net.frames_received",
                      {{"type", MessageTypeName(out->type)}})
          .Increment();
      return RecvStatus::kFrame;
    }
    if (!AwaitReady(fd_.get(), POLLIN, has_deadline, deadline)) {
      return RecvStatus::kTimeout;
    }
    std::uint8_t chunk[16384];
    const ssize_t n = ::recv(fd_.get(), chunk, sizeof(chunk), 0);
    if (n == 0) {
      AF_CHECK(inbox_.empty()) << "peer closed mid-frame ("
                               << inbox_.size() << " stray bytes)";
      return RecvStatus::kEof;
    }
    if (n < 0) {
      AF_CHECK(errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
          << "recv failed: " << util::ErrnoMessage(errno);
      continue;
    }
    inbox_.insert(inbox_.end(), chunk, chunk + n);
    BytesCounter("received").Increment(static_cast<std::uint64_t>(n));
  }
}

bool Connection::RecvFrame(Frame* out, int timeout_ms) {
  const RecvStatus status = TryRecvFrame(out, timeout_ms);
  AF_CHECK(status != RecvStatus::kTimeout) << "read timed out";
  return status == RecvStatus::kFrame;
}

Listener::Listener(std::uint16_t port) {
  fd_.reset(::socket(AF_INET, SOCK_STREAM, 0));
  AF_CHECK(fd_.valid()) << "socket failed: " << util::ErrnoMessage(errno);
  const int one = 1;
  ::setsockopt(fd_.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  AF_CHECK_EQ(::bind(fd_.get(), reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)), 0)
      << "bind to 127.0.0.1:" << port
      << " failed: " << util::ErrnoMessage(errno);
  AF_CHECK_EQ(::listen(fd_.get(), SOMAXCONN), 0)
      << "listen failed: " << util::ErrnoMessage(errno);

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  AF_CHECK_EQ(::getsockname(fd_.get(), reinterpret_cast<sockaddr*>(&bound),
                            &len), 0)
      << "getsockname failed: " << util::ErrnoMessage(errno);
  port_ = ntohs(bound.sin_port);
}

util::UniqueFd Listener::Accept() {
  const int fd = ::accept(fd_.get(), nullptr, nullptr);
  AF_CHECK_GE(fd, 0) << "accept failed: " << util::ErrnoMessage(errno);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return util::UniqueFd(fd);
}

Connection ConnectWithRetry(std::uint16_t port, const RetryConfig& retry,
                            std::uint64_t seed) {
  AF_CHECK_GT(retry.max_attempts, 0);
  BackoffSchedule backoff(retry, seed);
  obs::Counter& retries =
      obs::DefaultRegistry().GetCounter("net.connect_retries");

  std::string last_error;
  for (int attempt = 0; attempt < retry.max_attempts; ++attempt) {
    if (attempt > 0) {
      retries.Increment();
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          backoff.NextDelayMs()));
    }
    util::UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
    AF_CHECK(fd.valid()) << "socket failed: " << util::ErrnoMessage(errno);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      const int one = 1;
      ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Connection(std::move(fd));
    }
    last_error = util::ErrnoMessage(errno);
  }
  AF_CHECK(false) << "connect to 127.0.0.1:" << port << " failed after "
                  << retry.max_attempts << " attempts: " << last_error;
  return Connection();
}

}  // namespace net

#include "net/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <limits>
#include <new>

#include "compress/codec.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/registry.h"

namespace net {
namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  AF_CHECK_GE(flags, 0) << "fcntl failed: " << util::ErrnoMessage(errno);
  AF_CHECK_GE(::fcntl(fd, F_SETFL, flags | O_NONBLOCK), 0)
      << "fcntl failed: " << util::ErrnoMessage(errno);
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(options),
      listener_(options.port),
      frames_received_(obs::DefaultRegistry().GetCounter(
          "net.server.frames_received")),
      frames_sent_(obs::DefaultRegistry().GetCounter(
          "net.server.frames_sent")),
      bytes_in_(obs::DefaultRegistry().GetCounter("net.server.bytes_in")),
      bytes_out_(obs::DefaultRegistry().GetCounter("net.server.bytes_out")),
      evictions_(obs::DefaultRegistry().GetCounter("net.server.evictions")),
      duplicates_(obs::DefaultRegistry().GetCounter(
          "net.server.duplicate_updates")),
      tick_us_(obs::DefaultRegistry().GetHistogram("net.server.tick_us")),
      connected_clients_(obs::DefaultRegistry().GetGauge(
          "net.server.connected_clients")),
      transport_updates_(
          obs::DefaultRegistry().GetCounter("transport.updates")) {
  SetNonBlocking(listener_.fd());
}

Server::~Server() = default;

void Server::SetUpdateHandler(UpdateHandler handler) {
  on_update_ = std::move(handler);
}
void Server::SetConnectHandler(ClientHandler handler) {
  on_connect_ = std::move(handler);
}
void Server::SetDisconnectHandler(ClientHandler handler) {
  on_disconnect_ = std::move(handler);
}

void Server::AcceptPending() {
  while (true) {
    const int fd = ::accept(listener_.fd(), nullptr, nullptr);
    if (fd < 0) {
      AF_CHECK(errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
          << "accept failed: " << util::ErrnoMessage(errno);
      return;
    }
    SetNonBlocking(fd);
    auto conn = std::make_unique<Conn>();
    conn->fd.reset(fd);
    conn->last_progress_ns = NowNs();
    conns_.push_back(std::move(conn));
  }
}

bool Server::HandleFrame(Conn& conn, const FrameView& frame) {
  frames_received_.Increment();
  if (conn.client_id < 0) {
    // First frame must be the hello Ack carrying the client id.
    if (frame.type != MessageType::kAck) {
      AF_LOG(kWarn) << "net: connection sent " << MessageTypeName(frame.type)
                    << " before handshake; closing";
      return false;
    }
    const AckMsg hello = DecodeAck(frame);
    // client_id is int everywhere downstream; a value that truncates (or
    // lands on the <0 "no id yet" sentinel) would let one connection
    // register twice and leave a dangling by_client_ entry on close.
    if (hello.value >
        static_cast<std::uint64_t>(std::numeric_limits<int>::max())) {
      AF_LOG(kWarn) << "net: handshake declared unrepresentable client id "
                    << hello.value << "; closing";
      return false;
    }
    const int client_id = static_cast<int>(hello.value);
    if (by_client_.count(client_id) > 0) {
      AF_LOG(kWarn) << "net: duplicate handshake for client " << client_id
                    << "; closing new connection";
      return false;
    }
    conn.client_id = client_id;
    by_client_[client_id] = &conn;
    // Negotiation rounds: the handshake completes (and the connect callback
    // fires) only once every offered extension's select arrives, so the
    // driver never broadcasts before it knows the downlink codec or whether
    // the client understands trace context.
    if (!options_.advertised_codecs.empty()) {
      QueueFrame(conn, EncodeCodecOffer({options_.advertised_codecs}));
      conn.awaiting_codec_select = true;
    }
    if (options_.offer_trace_context) {
      QueueFrame(conn, EncodeTraceOffer({}));
      conn.awaiting_trace_select = true;
    }
    if (options_.offer_shm) {
      // A segment that fails to create (shm mount full, name collision) is
      // not fatal: skip the offer and the connection stays plain TCP.
      try {
        const std::string name = MakeShmName(port(), client_id);
        conn.shm = ShmSegment::Create(name, options_.shm_ring_bytes);
        QueueFrame(conn, EncodeShmOffer(
                             {name, static_cast<std::uint64_t>(
                                        options_.shm_ring_bytes)}));
        conn.awaiting_shm_select = true;
      } catch (const util::CheckError& e) {
        AF_LOG(kWarn) << "net: shm segment for client " << client_id
                      << " failed (" << e.what() << "); staying on TCP";
        conn.shm.reset();
      }
    }
    MaybeCompleteHandshake(conn);
    return true;
  }
  if (!conn.handshake_complete) {
    // Negotiation in flight: only the selects we are waiting on are
    // acceptable (in any order).
    if (frame.type == MessageType::kCodecSelect &&
        conn.awaiting_codec_select) {
      const CodecSelectMsg select = DecodeCodecSelect(frame);
      const std::string key = util::CanonicalName(select.codec);
      bool offered = key == "identity";
      for (const std::string& name : options_.advertised_codecs) {
        offered = offered || util::CanonicalName(name) == key;
      }
      if (!offered || !compress::Has(select.codec)) {
        AF_LOG(kWarn) << "net: client " << conn.client_id
                      << " selected unavailable codec '" << select.codec
                      << "'; closing";
        return false;
      }
      const compress::Codec& codec = compress::Get(select.codec);
      conn.codec = compress::IsIdentity(codec) ? nullptr : &codec;
      conn.awaiting_codec_select = false;
      MaybeCompleteHandshake(conn);
      return true;
    }
    if (frame.type == MessageType::kTraceSelect &&
        conn.awaiting_trace_select) {
      conn.trace_context = DecodeTraceSelect(frame).enabled;
      conn.awaiting_trace_select = false;
      MaybeCompleteHandshake(conn);
      return true;
    }
    if (frame.type == MessageType::kShmSelect && conn.awaiting_shm_select) {
      const bool enabled = DecodeShmSelect(frame).enabled;
      conn.awaiting_shm_select = false;
      if (enabled && conn.shm) {
        conn.shm_active = true;
        AF_LOG(kInfo) << "net: client " << conn.client_id
                      << " switched to shm rings (" << conn.shm->name()
                      << ")";
      } else {
        conn.shm.reset();  // creator unlinks; connection stays TCP
      }
      MaybeCompleteHandshake(conn);
      return true;
    }
    AF_LOG(kWarn) << "net: client " << conn.client_id << " sent "
                  << MessageTypeName(frame.type)
                  << " before negotiation finished; closing";
    return false;
  }
  switch (frame.type) {
    case MessageType::kClientUpdate: {
      ClientUpdateMsg msg = DecodeClientUpdate(frame);
      if (msg.client_id != conn.client_id) {
        AF_LOG(kWarn) << "net: client " << conn.client_id
                      << " sent update claiming id " << msg.client_id
                      << "; closing";
        return false;
      }
      // Ack every copy so the sender stops retrying; deliver only the
      // first. Queue-only (no immediate flush): a flush failure here would
      // destroy `conn` while ReadConn is still using it.
      QueueFrame(conn, EncodeAck({msg.job_index}));
      if (!conn.delivered_jobs.insert(msg.job_index).second) {
        duplicates_.Increment();
        return true;
      }
      transport_updates_.Increment();
      if (on_update_) {
        on_update_(conn.client_id, std::move(msg));
      }
      return true;
    }
    case MessageType::kAck:
      return true;  // stray receipt; harmless
    case MessageType::kShutdown:
      return false;  // client says goodbye
    case MessageType::kCodecSelect:
    case MessageType::kTraceSelect:
    case MessageType::kShmSelect:
      return true;  // repeated select after negotiation; harmless
    case MessageType::kModelBroadcast:
    case MessageType::kCodecOffer:
    case MessageType::kTraceOffer:
    case MessageType::kShmOffer:
      AF_LOG(kWarn) << "net: client " << conn.client_id
                    << " sent a server-only frame; closing";
      return false;
  }
  return false;
}

bool Server::ReadConn(Conn& conn) {
  while (true) {
    std::uint8_t chunk[16384];
    const ssize_t n = ::recv(conn.fd.get(), chunk, sizeof(chunk), 0);
    if (n == 0) {
      // EOF — but a peer that closes right after its last send may leave
      // complete frames buffered (in `conn.in`, and on the uplink ring for
      // an shm connection). Deliver those before honoring the close.
      if (conn.shm_active && conn.shm != nullptr) {
        while (conn.shm->uplink().ReadSome(conn.in) > 0) {
        }
      }
      ProcessInbuf(conn);
      return false;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        break;  // drained
      }
      return false;  // ECONNRESET etc.
    }
    conn.in.insert(conn.in.end(), chunk, chunk + n);
    bytes_in_.Increment(static_cast<std::uint64_t>(n));
    conn.last_progress_ns = NowNs();
  }
  return ProcessInbuf(conn);
}

bool Server::ProcessInbuf(Conn& conn) {
  // Decode every complete frame as a view over the scratch buffer — no
  // per-frame payload vector. The consumed prefix is reclaimed once, after
  // the batch, so every view handed to HandleFrame stays valid while it
  // runs. A malformed stream kills the connection.
  bool keep = true;
  while (keep) {
    FrameView frame;
    std::size_t consumed = 0;
    try {
      consumed = DecodeFrameView(
          std::span<const std::uint8_t>(conn.in).subspan(conn.in_offset),
          &frame);
    } catch (const util::CheckError& e) {
      AF_LOG(kWarn) << "net: malformed frame from client " << conn.client_id
                    << ": " << e.what();
      keep = false;
      break;
    }
    if (consumed == 0) {
      break;
    }
    conn.in_offset += consumed;
    // A structurally valid frame can still carry a malformed typed payload
    // (truncated AFPM/AFCZ block, checksum mismatch, bad codec name). That
    // must evict this connection, never unwind through the reactor.
    try {
      keep = HandleFrame(conn, frame);
    } catch (const util::CheckError& e) {
      AF_LOG(kWarn) << "net: malformed " << MessageTypeName(frame.type)
                    << " payload from client " << conn.client_id << ": "
                    << e.what();
      keep = false;
    } catch (const std::bad_alloc&) {
      // A payload that validates structurally but still demands an absurd
      // allocation is the sender's fault, not grounds to kill the reactor.
      AF_LOG(kWarn) << "net: " << MessageTypeName(frame.type)
                    << " payload from client " << conn.client_id
                    << " exhausted memory during decode; closing";
      keep = false;
    }
  }
  // Reclaim the decoded prefix (one memmove per batch, usually of nothing:
  // a fully-consumed buffer just resets). Capacity is kept for reuse.
  if (conn.in_offset == conn.in.size()) {
    conn.in.clear();
    conn.in_offset = 0;
  } else if (conn.in_offset > 0) {
    conn.in.erase(conn.in.begin(),
                  conn.in.begin() + static_cast<std::ptrdiff_t>(
                                        conn.in_offset));
    conn.in_offset = 0;
  }
  return keep;
}

void Server::QueueFrame(Conn& conn, const Frame& frame) {
  AppendFrameBytes(conn.out, frame);
  frames_sent_.Increment();
}

bool Server::WriteConn(Conn& conn) {
  if (conn.shm_active) {
    // Data frames ride the downlink ring; the reactor never blocks on it.
    // A full ring just leaves the remainder for the next tick — worker
    // death is detected through the still-open socket, not here.
    while (conn.out_offset < conn.out.size()) {
      const std::size_t n = conn.shm->downlink().WriteSome(
          std::span<const std::uint8_t>(conn.out).subspan(conn.out_offset));
      if (n == 0) {
        return true;
      }
      conn.out_offset += n;
      bytes_out_.Increment(static_cast<std::uint64_t>(n));
      conn.last_progress_ns = NowNs();
    }
    conn.out.clear();
    conn.out_offset = 0;
    return true;
  }
  while (conn.out_offset < conn.out.size()) {
    const ssize_t n =
        ::send(conn.fd.get(), conn.out.data() + conn.out_offset,
               conn.out.size() - conn.out_offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        return true;  // kernel buffer full; retry next tick
      }
      return false;  // EPIPE / ECONNRESET
    }
    conn.out_offset += static_cast<std::size_t>(n);
    bytes_out_.Increment(static_cast<std::uint64_t>(n));
    conn.last_progress_ns = NowNs();
  }
  conn.out.clear();
  conn.out_offset = 0;
  return true;
}

void Server::MaybeCompleteHandshake(Conn& conn) {
  if (conn.awaiting_codec_select || conn.awaiting_trace_select ||
      conn.awaiting_shm_select) {
    return;
  }
  conn.handshake_complete = true;
  connected_clients_.Set(static_cast<double>(HandshakeCount()));
  if (on_connect_) {
    on_connect_(conn.client_id);
  }
}

void Server::CloseConn(std::size_t index, const char* reason) {
  Conn& conn = *conns_[index];
  if (conn.client_id >= 0) {
    AF_LOG(kInfo) << "net: client " << conn.client_id
                  << " disconnected (" << reason << ")";
    by_client_.erase(conn.client_id);
    evictions_.Increment();
    connected_clients_.Set(static_cast<double>(HandshakeCount()));
    if (on_disconnect_) {
      on_disconnect_(conn.client_id);
    }
  }
  conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(index));
}

void Server::PollOnce(int timeout_ms) {
  AF_TRACE_SPAN("net.server.poll");
  const auto tick_start = Clock::now();

  // Rings have no fd, so poll cannot wake for them: while any shm
  // connection is live the tick must not sleep long.
  if (HasActiveShm() && timeout_ms > 1) {
    timeout_ms = 1;
  }

  std::vector<pollfd> pfds;
  pfds.reserve(conns_.size() + 1);
  pfds.push_back({listener_.fd(), POLLIN, 0});
  for (const auto& conn : conns_) {
    short events = POLLIN;
    if (conn->out_offset < conn->out.size()) {
      events |= POLLOUT;
    }
    pfds.push_back({conn->fd.get(), events, 0});
  }

  const int ready = ::poll(pfds.data(), pfds.size(), timeout_ms);
  AF_CHECK_GE(ready, 0) << "poll failed: " << util::ErrnoMessage(errno);

  if (pfds[0].revents & POLLIN) {
    AcceptPending();
  }

  // Walk connections backwards so CloseConn's erase cannot shift unvisited
  // entries. pfds was sized before AcceptPending, so new conns wait a tick.
  const std::size_t polled = pfds.size() - 1;
  for (std::size_t i = polled; i-- > 0;) {
    Conn& conn = *conns_[i];
    const short revents = pfds[i + 1].revents;
    if (revents & (POLLERR | POLLNVAL)) {
      CloseConn(i, "socket error");
      continue;
    }
    if (revents & POLLIN) {
      if (!ReadConn(conn)) {
        CloseConn(i, "peer closed or malformed stream");
        continue;
      }
    } else if (revents & POLLHUP) {
      // Only treat HUP as fatal once the read side is drained.
      CloseConn(i, "hangup");
      continue;
    }
    // Always attempt a write: reads may have queued acks this tick.
    if (!WriteConn(conn)) {
      CloseConn(i, "write failed");
      continue;
    }
    const bool stalled_read = conn.in.size() > conn.in_offset;
    const bool stalled_write = conn.out_offset < conn.out.size();
    if ((stalled_read || stalled_write) && options_.io_timeout_ms >= 0) {
      const std::uint64_t idle_ns = NowNs() - conn.last_progress_ns;
      if (idle_ns / 1000000 >
          static_cast<std::uint64_t>(options_.io_timeout_ms)) {
        CloseConn(i, stalled_read ? "read stalled mid-frame"
                                  : "write stalled");
        continue;
      }
    }
  }

  DrainShmConns();

  tick_us_.Record(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            tick_start)
          .count());
}

void Server::DrainShmConns() {
  // Backwards so CloseConn's erase cannot shift unvisited entries.
  for (std::size_t i = conns_.size(); i-- > 0;) {
    Conn& conn = *conns_[i];
    if (!conn.shm_active) {
      continue;
    }
    const std::size_t n = conn.shm->uplink().ReadSome(conn.in);
    if (n > 0) {
      bytes_in_.Increment(static_cast<std::uint64_t>(n));
      conn.last_progress_ns = NowNs();
      if (!ProcessInbuf(conn)) {
        CloseConn(i, "peer closed or malformed stream");
        continue;
      }
    }
    // Flush anything the frames above queued (acks) plus any broadcast
    // bytes a previously full ring left behind.
    if (!WriteConn(conn)) {
      CloseConn(i, "write failed");
    }
  }
}

bool Server::HasActiveShm() const {
  for (const auto& conn : conns_) {
    if (conn->shm_active) {
      return true;
    }
  }
  return false;
}

bool Server::SendTo(int client_id, const Frame& frame) {
  auto it = by_client_.find(client_id);
  if (it == by_client_.end()) {
    return false;
  }
  Conn& conn = *it->second;
  QueueFrame(conn, frame);
  // Opportunistic immediate flush keeps broadcasts prompt without waiting a
  // tick.
  if (!WriteConn(conn)) {
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      if (conns_[i].get() == &conn) {
        CloseConn(i, "write failed");
        return false;
      }
    }
  }
  return true;
}

void Server::BroadcastShutdown() {
  const Frame frame = MakeShutdownFrame();
  // Snapshot ids first: SendTo may evict (erase from by_client_) on a dead
  // socket, which would invalidate a live iterator.
  std::vector<int> ids;
  ids.reserve(by_client_.size());
  for (const auto& [id, conn] : by_client_) {
    ids.push_back(id);
  }
  for (int id : ids) {
    SendTo(id, frame);
  }
}

bool Server::Flush(int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    bool pending = false;
    for (const auto& conn : conns_) {
      if (conn->out_offset < conn->out.size()) {
        pending = true;
        break;
      }
    }
    if (!pending) {
      return true;
    }
    if (Clock::now() >= deadline) {
      return false;
    }
    PollOnce(10);
  }
}

std::size_t Server::HandshakeCount() const {
  std::size_t count = 0;
  for (const auto& [id, conn] : by_client_) {
    count += conn->handshake_complete ? 1 : 0;
  }
  return count;
}

bool Server::WaitForClients(std::size_t count, int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (HandshakeCount() < count) {
    if (Clock::now() >= deadline) {
      return false;
    }
    PollOnce(20);
  }
  return true;
}

void Server::Evict(int client_id, const char* reason) {
  auto it = by_client_.find(client_id);
  if (it == by_client_.end()) {
    return;
  }
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    if (conns_[i].get() == it->second) {
      CloseConn(i, reason);
      return;
    }
  }
}

bool Server::IsConnected(int client_id) const {
  return by_client_.count(client_id) > 0;
}

const compress::Codec* Server::ClientCodec(int client_id) const {
  auto it = by_client_.find(client_id);
  return it == by_client_.end() ? nullptr : it->second->codec;
}

bool Server::ClientTraceContext(int client_id) const {
  auto it = by_client_.find(client_id);
  return it != by_client_.end() && it->second->trace_context;
}

bool Server::ClientUsesShm(int client_id) const {
  auto it = by_client_.find(client_id);
  return it != by_client_.end() && it->second->shm_active;
}

}  // namespace net

#include "net/server.h"

#include <fcntl.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <new>

#include "net/session.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/logging.h"

namespace net {
namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  AF_CHECK_GE(flags, 0) << "fcntl failed: " << util::ErrnoMessage(errno);
  AF_CHECK_GE(::fcntl(fd, F_SETFL, flags | O_NONBLOCK), 0)
      << "fcntl failed: " << util::ErrnoMessage(errno);
}

}  // namespace

// One accepted connection: socket buffers plus the protocol Session, wired
// back into the server through the Session::Host interface.
struct Server::Conn : Session::Host {
  Server* server = nullptr;
  util::UniqueFd fd;
  std::unique_ptr<Session> session;
  bool shm_active = false;  // data frames ride the rings, not the fd
  std::unique_ptr<ShmSegment> shm;
  // Reusable receive scratch: bytes land at the end, frames decode as
  // views from `in_offset`, and the consumed prefix is reclaimed once per
  // read batch — no per-frame payload vector is ever built.
  std::vector<std::uint8_t> in;
  std::size_t in_offset = 0;  // already-decoded prefix of `in`
  std::vector<std::uint8_t> out;
  std::size_t out_offset = 0;  // already-written prefix of `out`
  std::uint64_t last_progress_ns = 0;

  // --- Session::Host ---------------------------------------------------
  void SendFrame(const Frame& frame) override {
    server->QueueFrame(*this, frame);
  }

  bool BindClient(int client_id) override {
    if (server->by_client_.count(client_id) > 0) {
      AF_LOG(kWarn) << "net: duplicate handshake for client " << client_id
                    << "; closing new connection";
      return false;
    }
    server->by_client_[client_id] = this;
    return true;
  }

  void OnHandshakeComplete() override {
    server->connected_clients_.Set(
        static_cast<double>(server->HandshakeCount()));
    if (server->on_connect_) {
      for (const int id : session->client_ids()) {
        server->on_connect_(id);
      }
    }
  }

  void OnUpdate(int client_id, ClientUpdateMsg msg) override {
    server->transport_updates_.Increment();
    if (server->on_update_) {
      server->on_update_(client_id, std::move(msg));
    }
  }

  void OnDuplicateUpdate(int, std::uint64_t) override {
    server->duplicates_.Increment();
  }

  std::string CreateShmSegment(int client_id,
                               std::size_t ring_bytes) override {
    // A segment that fails to create (shm mount full, name collision) is
    // not fatal: no offer is sent and the connection stays plain TCP.
    try {
      const std::string name = MakeShmName(server->port(), client_id);
      shm = ShmSegment::Create(name, ring_bytes);
      return name;
    } catch (const util::CheckError& e) {
      AF_LOG(kWarn) << "net: shm segment for client " << client_id
                    << " failed (" << e.what() << "); staying on TCP";
      shm.reset();
      return std::string();
    }
  }

  void SetShmActive(bool active) override {
    if (active && shm != nullptr) {
      shm_active = true;
      AF_LOG(kInfo) << "net: client " << session->primary_id()
                    << " switched to shm rings (" << shm->name() << ")";
    } else {
      shm.reset();  // creator unlinks; connection stays TCP
    }
  }
};

Server::Server(ServerOptions options)
    : options_(options),
      listener_(options.port),
      reactor_(ReactorOptions{options.reactor_shards}),
      frames_received_(obs::DefaultRegistry().GetCounter(
          "net.server.frames_received")),
      frames_sent_(obs::DefaultRegistry().GetCounter(
          "net.server.frames_sent")),
      bytes_in_(obs::DefaultRegistry().GetCounter("net.server.bytes_in")),
      bytes_out_(obs::DefaultRegistry().GetCounter("net.server.bytes_out")),
      evictions_(obs::DefaultRegistry().GetCounter("net.server.evictions")),
      duplicates_(obs::DefaultRegistry().GetCounter(
          "net.server.duplicate_updates")),
      tick_us_(obs::DefaultRegistry().GetHistogram("net.server.tick_us")),
      connected_clients_(obs::DefaultRegistry().GetGauge(
          "net.server.connected_clients")),
      transport_updates_(
          obs::DefaultRegistry().GetCounter("transport.updates")) {
  SetNonBlocking(listener_.fd());
  reactor_.Add(listener_.fd());
}

Server::~Server() = default;

void Server::SetUpdateHandler(UpdateHandler handler) {
  on_update_ = std::move(handler);
}
void Server::SetConnectHandler(ClientHandler handler) {
  on_connect_ = std::move(handler);
}
void Server::SetDisconnectHandler(ClientHandler handler) {
  on_disconnect_ = std::move(handler);
}

void Server::AcceptPending() {
  while (true) {
    const int fd = ::accept(listener_.fd(), nullptr, nullptr);
    if (fd < 0) {
      AF_CHECK(errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
          << "accept failed: " << util::ErrnoMessage(errno);
      return;
    }
    SetNonBlocking(fd);
    auto conn = std::make_unique<Conn>();
    conn->server = this;
    conn->fd.reset(fd);
    conn->last_progress_ns = NowNs();
    conn->session = std::make_unique<Session>(
        conn.get(),
        Session::Options{options_.advertised_codecs,
                         options_.offer_trace_context, options_.offer_shm,
                         options_.shm_ring_bytes});
    reactor_.Add(fd);
    conns_.emplace(fd, std::move(conn));
  }
}

bool Server::ReadConn(Conn& conn) {
  while (true) {
    std::uint8_t chunk[16384];
    const ssize_t n = ::recv(conn.fd.get(), chunk, sizeof(chunk), 0);
    if (n == 0) {
      // EOF — but a peer that closes right after its last send may leave
      // complete frames buffered (in `conn.in`, and on the uplink ring for
      // an shm connection). Deliver those before honoring the close.
      if (conn.shm_active && conn.shm != nullptr) {
        while (conn.shm->uplink().ReadSome(conn.in) > 0) {
        }
      }
      ProcessInbuf(conn);
      return false;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        break;  // drained
      }
      return false;  // ECONNRESET etc.
    }
    conn.in.insert(conn.in.end(), chunk, chunk + n);
    bytes_in_.Increment(static_cast<std::uint64_t>(n));
    conn.last_progress_ns = NowNs();
  }
  return ProcessInbuf(conn);
}

bool Server::ProcessInbuf(Conn& conn) {
  // Decode every complete frame as a view over the scratch buffer — no
  // per-frame payload vector. The consumed prefix is reclaimed once, after
  // the batch, so every view handed to the session stays valid while it
  // runs. A malformed stream kills the connection.
  bool keep = true;
  while (keep) {
    FrameView frame;
    std::size_t consumed = 0;
    try {
      consumed = DecodeFrameView(
          std::span<const std::uint8_t>(conn.in).subspan(conn.in_offset),
          &frame);
    } catch (const util::CheckError& e) {
      AF_LOG(kWarn) << "net: malformed frame from client "
                    << conn.session->primary_id() << ": " << e.what();
      keep = false;
      break;
    }
    if (consumed == 0) {
      break;
    }
    conn.in_offset += consumed;
    frames_received_.Increment();
    // A structurally valid frame can still carry a malformed typed payload
    // (truncated AFPM/AFCZ block, checksum mismatch, bad codec name). That
    // must evict this connection, never unwind through the reactor.
    try {
      keep = conn.session->HandleFrame(frame);
    } catch (const util::CheckError& e) {
      AF_LOG(kWarn) << "net: malformed " << MessageTypeName(frame.type)
                    << " payload from client " << conn.session->primary_id()
                    << ": " << e.what();
      keep = false;
    } catch (const std::bad_alloc&) {
      // A payload that validates structurally but still demands an absurd
      // allocation is the sender's fault, not grounds to kill the reactor.
      AF_LOG(kWarn) << "net: " << MessageTypeName(frame.type)
                    << " payload from client " << conn.session->primary_id()
                    << " exhausted memory during decode; closing";
      keep = false;
    }
  }
  // Reclaim the decoded prefix (one memmove per batch, usually of nothing:
  // a fully-consumed buffer just resets). Capacity is kept for reuse.
  if (conn.in_offset == conn.in.size()) {
    conn.in.clear();
    conn.in_offset = 0;
  } else if (conn.in_offset > 0) {
    conn.in.erase(conn.in.begin(),
                  conn.in.begin() + static_cast<std::ptrdiff_t>(
                                        conn.in_offset));
    conn.in_offset = 0;
  }
  return keep;
}

void Server::QueueFrame(Conn& conn, const Frame& frame) {
  AppendFrameBytes(conn.out, frame);
  frames_sent_.Increment();
}

bool Server::WriteConn(Conn& conn) {
  if (conn.shm_active) {
    // Data frames ride the downlink ring; the reactor never blocks on it.
    // A full ring just leaves the remainder for the next tick — worker
    // death is detected through the still-open socket, not here.
    while (conn.out_offset < conn.out.size()) {
      const std::size_t n = conn.shm->downlink().WriteSome(
          std::span<const std::uint8_t>(conn.out).subspan(conn.out_offset));
      if (n == 0) {
        return true;
      }
      conn.out_offset += n;
      bytes_out_.Increment(static_cast<std::uint64_t>(n));
      conn.last_progress_ns = NowNs();
    }
    conn.out.clear();
    conn.out_offset = 0;
    return true;
  }
  while (conn.out_offset < conn.out.size()) {
    const ssize_t n =
        ::send(conn.fd.get(), conn.out.data() + conn.out_offset,
               conn.out.size() - conn.out_offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        return true;  // kernel buffer full; retry when writable
      }
      return false;  // EPIPE / ECONNRESET
    }
    conn.out_offset += static_cast<std::size_t>(n);
    bytes_out_.Increment(static_cast<std::uint64_t>(n));
    conn.last_progress_ns = NowNs();
  }
  conn.out.clear();
  conn.out_offset = 0;
  return true;
}

void Server::UpdateWriteInterest(Conn& conn) {
  // Shm connections flush through DrainShmConns each tick; the socket
  // carries no data frames, so it never needs write readiness.
  const bool want =
      !conn.shm_active && conn.out_offset < conn.out.size();
  reactor_.SetWantWrite(conn.fd.get(), want);
}

void Server::CloseConn(Conn& conn, const char* reason) {
  const int fd = conn.fd.get();
  reactor_.Remove(fd);
  for (const int id : conn.session->client_ids()) {
    AF_LOG(kInfo) << "net: client " << id << " disconnected (" << reason
                  << ")";
    by_client_.erase(id);
    evictions_.Increment();
    if (on_disconnect_) {
      on_disconnect_(id);
    }
  }
  if (!conn.session->client_ids().empty()) {
    connected_clients_.Set(static_cast<double>(HandshakeCount()));
  }
  conns_.erase(fd);  // destroys conn
}

void Server::PollOnce(int timeout_ms) {
  AF_TRACE_SPAN("net.server.poll");
  const auto tick_start = Clock::now();

  // Rings have no fd, so the reactor cannot wake for them: while any shm
  // connection is live the tick must not sleep long.
  if (HasActiveShm() && timeout_ms > 1) {
    timeout_ms = 1;
  }

  events_.clear();
  reactor_.Wait(timeout_ms, &events_);

  // Connection events first, accepts last: an fd freed by a close in this
  // batch can then be reused by a fresh accept without a stale event from
  // the old connection landing on the new one.
  bool accept_ready = false;
  for (const ReactorEvent& event : events_) {
    if (event.fd == listener_.fd()) {
      accept_ready = accept_ready || event.readable || event.error;
      continue;
    }
    auto it = conns_.find(event.fd);
    if (it == conns_.end()) {
      continue;  // closed earlier in this batch
    }
    Conn& conn = *it->second;
    if (event.error) {
      CloseConn(conn, "socket error");
      continue;
    }
    if (event.readable) {
      if (!ReadConn(conn)) {
        CloseConn(conn, "peer closed or malformed stream");
        continue;
      }
    } else if (event.hangup) {
      // Only treat HUP as fatal once the read side is drained.
      CloseConn(conn, "hangup");
      continue;
    }
    // Always attempt a write after events: reads may have queued acks.
    if (!WriteConn(conn)) {
      CloseConn(conn, "write failed");
      continue;
    }
    UpdateWriteInterest(conn);
  }
  if (accept_ready) {
    AcceptPending();
  }

  // Stall eviction: a connection stuck mid-frame or mid-write past the io
  // timeout is dead. Collect first — CloseConn mutates conns_.
  if (options_.io_timeout_ms >= 0) {
    std::vector<Conn*> stalled;
    const std::uint64_t now_ns = NowNs();
    for (const auto& [fd, conn] : conns_) {
      const bool stalled_read = conn->in.size() > conn->in_offset;
      const bool stalled_write = conn->out_offset < conn->out.size();
      if (!stalled_read && !stalled_write) {
        continue;
      }
      const std::uint64_t idle_ns = now_ns - conn->last_progress_ns;
      if (idle_ns / 1000000 >
          static_cast<std::uint64_t>(options_.io_timeout_ms)) {
        stalled.push_back(conn.get());
      }
    }
    for (Conn* conn : stalled) {
      const bool stalled_read = conn->in.size() > conn->in_offset;
      CloseConn(*conn,
                stalled_read ? "read stalled mid-frame" : "write stalled");
    }
  }

  DrainShmConns();

  tick_us_.Record(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            tick_start)
          .count());
}

void Server::DrainShmConns() {
  // Collect first: CloseConn mutates conns_ mid-iteration otherwise.
  std::vector<Conn*> shm_conns;
  for (const auto& [fd, conn] : conns_) {
    if (conn->shm_active) {
      shm_conns.push_back(conn.get());
    }
  }
  for (Conn* conn : shm_conns) {
    const std::size_t n = conn->shm->uplink().ReadSome(conn->in);
    if (n > 0) {
      bytes_in_.Increment(static_cast<std::uint64_t>(n));
      conn->last_progress_ns = NowNs();
      if (!ProcessInbuf(*conn)) {
        CloseConn(*conn, "peer closed or malformed stream");
        continue;
      }
    }
    // Flush anything the frames above queued (acks) plus any broadcast
    // bytes a previously full ring left behind.
    if (!WriteConn(*conn)) {
      CloseConn(*conn, "write failed");
    }
  }
}

bool Server::HasActiveShm() const {
  for (const auto& [fd, conn] : conns_) {
    if (conn->shm_active) {
      return true;
    }
  }
  return false;
}

bool Server::SendTo(int client_id, const Frame& frame) {
  auto it = by_client_.find(client_id);
  if (it == by_client_.end()) {
    return false;
  }
  Conn& conn = *it->second;
  QueueFrame(conn, frame);
  // Opportunistic immediate flush keeps broadcasts prompt without waiting a
  // tick.
  if (!WriteConn(conn)) {
    CloseConn(conn, "write failed");
    return false;
  }
  UpdateWriteInterest(conn);
  return true;
}

void Server::BroadcastShutdown() {
  const Frame frame = MakeShutdownFrame();
  // Snapshot ids first: SendTo may evict (erase from by_client_) on a dead
  // socket, which would invalidate a live iterator.
  std::vector<int> ids;
  ids.reserve(by_client_.size());
  for (const auto& [id, conn] : by_client_) {
    ids.push_back(id);
  }
  for (int id : ids) {
    SendTo(id, frame);
  }
}

bool Server::Flush(int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    bool pending = false;
    for (const auto& [fd, conn] : conns_) {
      if (conn->out_offset < conn->out.size()) {
        pending = true;
        break;
      }
    }
    if (!pending) {
      return true;
    }
    if (Clock::now() >= deadline) {
      return false;
    }
    PollOnce(10);
  }
}

std::size_t Server::HandshakeCount() const {
  std::size_t count = 0;
  for (const auto& [id, conn] : by_client_) {
    count += conn->session->handshake_complete() ? 1 : 0;
  }
  return count;
}

bool Server::WaitForClients(std::size_t count, int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (HandshakeCount() < count) {
    if (Clock::now() >= deadline) {
      return false;
    }
    PollOnce(20);
  }
  return true;
}

void Server::Evict(int client_id, const char* reason) {
  auto it = by_client_.find(client_id);
  if (it == by_client_.end()) {
    return;
  }
  CloseConn(*it->second, reason);
}

bool Server::IsConnected(int client_id) const {
  return by_client_.count(client_id) > 0;
}

const compress::Codec* Server::ClientCodec(int client_id) const {
  auto it = by_client_.find(client_id);
  return it == by_client_.end() ? nullptr : it->second->session->codec();
}

bool Server::ClientTraceContext(int client_id) const {
  auto it = by_client_.find(client_id);
  return it != by_client_.end() && it->second->session->trace_context();
}

bool Server::ClientUsesShm(int client_id) const {
  auto it = by_client_.find(client_id);
  return it != by_client_.end() && it->second->shm_active;
}

bool Server::IsMultiplexed(int client_id) const {
  auto it = by_client_.find(client_id);
  return it != by_client_.end() && it->second->session->multiplexed();
}

int Server::ShardOfClient(int client_id) const {
  auto it = by_client_.find(client_id);
  return it == by_client_.end() ? -1
                                : reactor_.ShardOf(it->second->fd.get());
}

}  // namespace net

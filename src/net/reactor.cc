#include "net/reactor.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#endif

#include <cerrno>
#include <cstdlib>
#include <string>
#include <thread>
#include <unordered_map>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/fd.h"
#include "util/logging.h"

namespace net {
namespace {

// One Wait() drains at most this many kernel events per shard; anything
// beyond stays level-triggered-ready for the next tick.
constexpr int kMaxBatch = 256;

int ResolveShardCount(int requested) {
  if (requested > 0) {
    return requested;
  }
  const unsigned cores = std::thread::hardware_concurrency();
  const int per_core = cores == 0 ? 1 : static_cast<int>(cores);
  return per_core > 8 ? 8 : per_core;
}

bool EnvForcesPoll() {
  const char* env = std::getenv("AF_REACTOR");
  return env != nullptr && std::string(env) == "poll";
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  AF_CHECK_GE(flags, 0) << "fcntl failed: " << util::ErrnoMessage(errno);
  AF_CHECK_GE(::fcntl(fd, F_SETFL, flags | O_NONBLOCK), 0)
      << "fcntl failed: " << util::ErrnoMessage(errno);
}

struct Watch {
  int shard = 0;
  bool want_write = false;
};

}  // namespace

struct Reactor::Impl {
  int shards = 1;
  bool use_epoll = false;
  std::unordered_map<int, Watch> watches;

  // Wakeup pipe: read end lives in the wait set, any thread writes a byte
  // to interrupt. Non-blocking on both ends so a flood of wakeups coalesces
  // instead of blocking the caller.
  util::UniqueFd wake_read;
  util::UniqueFd wake_write;

#if defined(__linux__)
  util::UniqueFd master;                 // epoll-of-epolls + wakeup pipe
  std::vector<util::UniqueFd> shard_fds; // one epoll fd per shard
#endif

  obs::Counter& wakeups =
      obs::DefaultRegistry().GetCounter("reactor.wakeups");
  obs::Counter& events =
      obs::DefaultRegistry().GetCounter("reactor.events");
  obs::Gauge& shards_gauge =
      obs::DefaultRegistry().GetGauge("reactor.shards");
  std::vector<obs::Counter*> shard_events;

  int AssignShard(int fd) const {
    // Knuth multiplicative hash keeps assignment stable per fd and spreads
    // sequential accept fds across shards.
    return static_cast<int>((static_cast<std::uint32_t>(fd) * 2654435761u) %
                            static_cast<std::uint32_t>(shards));
  }

  void DrainWakePipe() {
    std::uint8_t buf[64];
    while (::read(wake_read.get(), buf, sizeof(buf)) > 0) {
    }
  }

#if defined(__linux__)
  void EpollCtl(int epfd, int op, int fd, std::uint32_t ev_mask) const {
    epoll_event ev{};
    ev.events = ev_mask;
    ev.data.fd = fd;
    AF_CHECK_EQ(::epoll_ctl(epfd, op, fd, &ev), 0)
        << "epoll_ctl failed: " << util::ErrnoMessage(errno);
  }

  std::size_t WaitEpoll(int timeout_ms, std::vector<ReactorEvent>* out) {
    epoll_event ready[kMaxBatch];
    const int n = ::epoll_wait(master.get(), ready, kMaxBatch, timeout_ms);
    if (n < 0) {
      AF_CHECK(errno == EINTR)
          << "epoll_wait failed: " << util::ErrnoMessage(errno);
      return 0;
    }
    std::size_t appended = 0;
    for (int i = 0; i < n; ++i) {
      const int fd = ready[i].data.fd;
      if (fd == wake_read.get()) {
        DrainWakePipe();
        continue;
      }
      // A readable master entry is a shard with pending events: drain its
      // batch without blocking.
      for (std::size_t s = 0; s < shard_fds.size(); ++s) {
        if (shard_fds[s].get() != fd) {
          continue;
        }
        epoll_event shard_ready[kMaxBatch];
        const int m =
            ::epoll_wait(shard_fds[s].get(), shard_ready, kMaxBatch, 0);
        AF_CHECK_GE(m, 0)
            << "shard epoll_wait failed: " << util::ErrnoMessage(errno);
        for (int j = 0; j < m; ++j) {
          ReactorEvent event;
          event.fd = shard_ready[j].data.fd;
          event.readable = (shard_ready[j].events & EPOLLIN) != 0;
          event.writable = (shard_ready[j].events & EPOLLOUT) != 0;
          event.error = (shard_ready[j].events & EPOLLERR) != 0;
          event.hangup = (shard_ready[j].events & EPOLLHUP) != 0;
          out->push_back(event);
          ++appended;
        }
        if (m > 0 && shard_events[s] != nullptr) {
          shard_events[s]->Increment(static_cast<std::uint64_t>(m));
        }
        break;
      }
    }
    return appended;
  }
#endif

  std::size_t WaitPoll(int timeout_ms, std::vector<ReactorEvent>* out) {
    std::vector<pollfd> pfds;
    pfds.reserve(watches.size() + 1);
    pfds.push_back({wake_read.get(), POLLIN, 0});
    for (const auto& [fd, watch] : watches) {
      short interest = POLLIN;
      if (watch.want_write) {
        interest |= POLLOUT;
      }
      pfds.push_back({fd, interest, 0});
    }
    const int n = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (n < 0) {
      AF_CHECK(errno == EINTR)
          << "poll failed: " << util::ErrnoMessage(errno);
      return 0;
    }
    if (pfds[0].revents & POLLIN) {
      DrainWakePipe();
    }
    std::size_t appended = 0;
    for (std::size_t i = 1; i < pfds.size(); ++i) {
      const short revents = pfds[i].revents;
      if (revents == 0) {
        continue;
      }
      ReactorEvent event;
      event.fd = pfds[i].fd;
      event.readable = (revents & POLLIN) != 0;
      event.writable = (revents & POLLOUT) != 0;
      event.error = (revents & (POLLERR | POLLNVAL)) != 0;
      event.hangup = (revents & POLLHUP) != 0;
      out->push_back(event);
      ++appended;
      auto it = watches.find(event.fd);
      if (it != watches.end() &&
          shard_events[static_cast<std::size_t>(it->second.shard)] !=
              nullptr) {
        shard_events[static_cast<std::size_t>(it->second.shard)]->Increment();
      }
    }
    return appended;
  }
};

Reactor::Reactor(ReactorOptions options) : impl_(std::make_unique<Impl>()) {
  impl_->shards = ResolveShardCount(options.shards);
#if defined(__linux__)
  impl_->use_epoll = !EnvForcesPoll();
#else
  impl_->use_epoll = false;
  (void)EnvForcesPoll();
#endif

  int pipe_fds[2];
  AF_CHECK_EQ(::pipe(pipe_fds), 0)
      << "pipe failed: " << util::ErrnoMessage(errno);
  impl_->wake_read.reset(pipe_fds[0]);
  impl_->wake_write.reset(pipe_fds[1]);
  SetNonBlocking(impl_->wake_read.get());
  SetNonBlocking(impl_->wake_write.get());

  impl_->shard_events.resize(static_cast<std::size_t>(impl_->shards));
  for (int s = 0; s < impl_->shards; ++s) {
    impl_->shard_events[static_cast<std::size_t>(s)] =
        &obs::DefaultRegistry().GetCounter(
            "reactor.shard_events", {{"shard", std::to_string(s)}});
  }
  impl_->shards_gauge.Set(static_cast<double>(impl_->shards));

#if defined(__linux__)
  if (impl_->use_epoll) {
    impl_->master.reset(::epoll_create1(0));
    AF_CHECK(impl_->master.valid())
        << "epoll_create1 failed: " << util::ErrnoMessage(errno);
    impl_->shard_fds.reserve(static_cast<std::size_t>(impl_->shards));
    for (int s = 0; s < impl_->shards; ++s) {
      util::UniqueFd shard(::epoll_create1(0));
      AF_CHECK(shard.valid())
          << "epoll_create1 failed: " << util::ErrnoMessage(errno);
      impl_->EpollCtl(impl_->master.get(), EPOLL_CTL_ADD, shard.get(),
                      EPOLLIN);
      impl_->shard_fds.push_back(std::move(shard));
    }
    impl_->EpollCtl(impl_->master.get(), EPOLL_CTL_ADD,
                    impl_->wake_read.get(), EPOLLIN);
  }
#endif
}

Reactor::~Reactor() = default;

void Reactor::Add(int fd) {
  AF_CHECK_GE(fd, 0);
  AF_CHECK_EQ(impl_->watches.count(fd), 0u)
      << "fd " << fd << " already registered";
  Watch watch;
  watch.shard = impl_->AssignShard(fd);
  watch.want_write = false;
  impl_->watches.emplace(fd, watch);
#if defined(__linux__)
  if (impl_->use_epoll) {
    impl_->EpollCtl(
        impl_->shard_fds[static_cast<std::size_t>(watch.shard)].get(),
        EPOLL_CTL_ADD, fd, EPOLLIN);
  }
#endif
}

void Reactor::SetWantWrite(int fd, bool want_write) {
  auto it = impl_->watches.find(fd);
  AF_CHECK(it != impl_->watches.end()) << "fd " << fd << " not registered";
  if (it->second.want_write == want_write) {
    return;
  }
  it->second.want_write = want_write;
#if defined(__linux__)
  if (impl_->use_epoll) {
    impl_->EpollCtl(
        impl_->shard_fds[static_cast<std::size_t>(it->second.shard)].get(),
        EPOLL_CTL_MOD, fd,
        want_write ? (EPOLLIN | EPOLLOUT) : EPOLLIN);
  }
#endif
}

void Reactor::Remove(int fd) {
  auto it = impl_->watches.find(fd);
  AF_CHECK(it != impl_->watches.end()) << "fd " << fd << " not registered";
#if defined(__linux__)
  if (impl_->use_epoll) {
    impl_->EpollCtl(
        impl_->shard_fds[static_cast<std::size_t>(it->second.shard)].get(),
        EPOLL_CTL_DEL, fd, 0);
  }
#endif
  impl_->watches.erase(it);
}

std::size_t Reactor::Wait(int timeout_ms, std::vector<ReactorEvent>* out) {
  AF_CHECK(out != nullptr);
  std::size_t appended = 0;
#if defined(__linux__)
  if (impl_->use_epoll) {
    appended = impl_->WaitEpoll(timeout_ms, out);
  } else {
    appended = impl_->WaitPoll(timeout_ms, out);
  }
#else
  appended = impl_->WaitPoll(timeout_ms, out);
#endif
  if (appended > 0) {
    impl_->events.Increment(static_cast<std::uint64_t>(appended));
  }
  return appended;
}

void Reactor::Wakeup() {
  impl_->wakeups.Increment();
  const std::uint8_t byte = 1;
  // EAGAIN means a wakeup is already pending — coalescing is the point.
  [[maybe_unused]] const ssize_t n =
      ::write(impl_->wake_write.get(), &byte, 1);
}

int Reactor::ShardOf(int fd) const {
  auto it = impl_->watches.find(fd);
  return it == impl_->watches.end() ? -1 : it->second.shard;
}

int Reactor::shard_count() const { return impl_->shards; }

std::size_t Reactor::watched_count() const { return impl_->watches.size(); }

const char* Reactor::backend_name() const {
  return impl_->use_epoll ? "epoll" : "poll";
}

}  // namespace net

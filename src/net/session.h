// Transport-agnostic protocol session: the half of the poll()-era server
// that cared about the protocol — handshake, codec/trace/shm negotiation,
// update dedup, eviction policy — split out from fd readiness (which lives
// in net/reactor.h). A Session never touches a socket: its owner (the Host)
// feeds it decoded frames and carries out the side effects it requests, so
// the same state machine serves TCP sockets, shm rings, and any future
// transport that can deliver frames.
//
// Per-session state machine:
//
//   accepted ──Ack{client_id}──────▶ identified (single client)
//        │  └─Hello{ids…}──────────▶ identified (multiplexed)
//        │                              │ offered selects, any order
//        │                              ▼
//        │                          handshake complete ──ClientUpdate*──▶ …
//        └─ anything else / malformed ──▶ closed (HandleFrame → false)
//
// Multiplexed sessions carry many client ids over one connection (the
// virtual-client pool's hello). Negotiation is identical except that no shm
// segment is offered — the rings are per-connection-pair and a mux session
// multiplexes too many peers for one ring to be a win. Update dedup is
// keyed (client_id, job_index) so id streams on a shared session cannot
// collide.
#pragma once

#include <cstddef>
#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "net/frame.h"

namespace compress {
class Codec;
}  // namespace compress

namespace net {

class Session {
 public:
  struct Options {
    // Codec names offered after the hello (preference order). Empty → no
    // CodecOffer, legacy two-step handshake.
    std::vector<std::string> advertised_codecs;
    // Offer trace-context propagation (TraceOffer after the hello).
    bool offer_trace_context = false;
    // Offer a shared-memory ring to single-client sessions.
    bool offer_shm = false;
    std::size_t shm_ring_bytes = 0;
  };

  // The transport owning this session. All calls arrive synchronously from
  // inside HandleFrame on the owner thread.
  class Host {
   public:
    virtual ~Host() = default;
    // Queues a protocol frame toward the peer (no flush requirement).
    virtual void SendFrame(const Frame& frame) = 0;
    // Registers `client_id` as reachable through this session. false →
    // the id is already bound elsewhere; the session closes.
    virtual bool BindClient(int client_id) = 0;
    // The handshake (hello + every offered select) just finished.
    virtual void OnHandshakeComplete() = 0;
    // First delivery of an update (duplicates are acked but suppressed).
    virtual void OnUpdate(int client_id, ClientUpdateMsg msg) = 0;
    virtual void OnDuplicateUpdate(int client_id,
                                   std::uint64_t job_index) = 0;
    // Creates the per-connection shm segment; returns its name, or "" when
    // creation failed / is unsupported (no offer is sent, stays TCP).
    virtual std::string CreateShmSegment(int client_id,
                                         std::size_t ring_bytes) = 0;
    // The peer's ShmSelect arrived: activate the rings or discard the
    // segment and stay on the byte transport.
    virtual void SetShmActive(bool active) = 0;
  };

  Session(Host* host, Options options);

  // Feeds one decoded frame through the state machine. Returns false when
  // the session must close (protocol violation, peer goodbye). Malformed
  // typed payloads throw util::CheckError — the caller contains that the
  // same way it contains malformed framing.
  bool HandleFrame(const FrameView& frame);

  bool identified() const { return !client_ids_.empty(); }
  bool handshake_complete() const { return handshake_complete_; }
  bool multiplexed() const { return multiplexed_; }
  // Bound ids in hello order (one entry for single-client sessions).
  const std::vector<int>& client_ids() const { return client_ids_; }
  int primary_id() const {
    return client_ids_.empty() ? -1 : client_ids_.front();
  }
  // Negotiated codec; nullptr = identity / legacy handshake.
  const compress::Codec* codec() const { return codec_; }
  bool trace_context() const { return trace_context_; }
  bool shm_offered() const { return awaiting_shm_select_; }

 private:
  bool HandleHelloAck(const FrameView& frame);
  bool HandleHello(const FrameView& frame);
  bool HandleNegotiation(const FrameView& frame);
  bool HandleClientUpdate(const FrameView& frame);
  // Sends the offers this session's options call for; completes the
  // handshake immediately when there are none.
  void BeginNegotiation();
  void MaybeCompleteHandshake();
  bool Owns(int client_id) const { return owned_ids_.count(client_id) > 0; }

  Host* host_;
  Options options_;
  std::vector<int> client_ids_;
  std::set<int> owned_ids_;
  bool multiplexed_ = false;
  bool handshake_complete_ = false;
  bool awaiting_codec_select_ = false;
  bool awaiting_trace_select_ = false;
  bool awaiting_shm_select_ = false;
  bool trace_context_ = false;
  const compress::Codec* codec_ = nullptr;
  // Dedup of resent updates, keyed (client_id, job_index) so multiplexed
  // id streams cannot collide.
  std::set<std::pair<int, std::uint64_t>> delivered_;
};

}  // namespace net

// Shared-memory ring transport for same-host workers.
//
// One mmap'd POSIX shm segment per connection carries two SPSC byte rings —
// uplink (client → server) and downlink (server → client) — that move the
// exact same AFNT frame bytes as the TCP socket they replace, which is what
// keeps --transport=shm bit-identical to tcp and inproc. Layout ("AFSH",
// little-endian, all cursors free-running u64):
//
//   ShmHeader   u32 magic "AFSH" | u32 version | u64 ring_bytes
//   RingControl uplink    head/tail cursors + futex doorbells (64B lanes)
//   RingControl downlink
//   bytes       uplink data   [ring_bytes]
//   bytes       downlink data [ring_bytes]
//
// `ring_bytes` must be a power of two. Producers bump `head`, consumers
// bump `tail`; the doorbell words (`data_seq`, bumped on produce, and
// `space_seq`, bumped on consume) are futex words — non-PRIVATE, so the
// blocking worker side can sleep on them across processes. The server's
// reactor never blocks on a ring: it drains with TryRead/TryWrite on each
// tick (PollOnce caps its poll timeout while shm connections exist).
//
// Negotiation rides the existing TCP handshake (ShmOffer / ShmSelect, see
// net/frame.h); the socket stays open as the liveness signal and fallback.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace net {

inline constexpr std::uint32_t kShmMagic = 0x48534641u;  // "AFSH" (LE)
inline constexpr std::uint32_t kShmVersion = 1;
inline constexpr std::size_t kShmDefaultRingBytes = std::size_t{1} << 22;

// On-segment header; validated by ValidateShmHeader before any ring math.
struct ShmHeader {
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t ring_bytes = 0;
};

// Per-direction control block. Cache-line lanes keep producer and consumer
// cursors from false-sharing.
struct ShmRingControl {
  alignas(64) std::atomic<std::uint64_t> head;       // bytes produced
  alignas(64) std::atomic<std::uint64_t> tail;       // bytes consumed
  alignas(64) std::atomic<std::uint32_t> data_seq;   // doorbell: produce
  alignas(64) std::atomic<std::uint32_t> space_seq;  // doorbell: consume
};
static_assert(sizeof(ShmRingControl) == 256);

// Validates an AFSH header blob: magic, version, power-of-two ring size
// within sane bounds. Throws util::CheckError on anything else. Pure
// function so the fuzzer can drive it with hostile bytes.
void ValidateShmHeader(std::span<const std::uint8_t> bytes);

// Total segment size for a given per-direction ring capacity.
std::size_t ShmSegmentBytes(std::size_t ring_bytes);

// One direction over mapped memory the caller keeps alive. Single-producer
// single-consumer; a byte stream, not a message queue — frames re-assemble
// exactly as they do from a TCP stream.
class ShmRing {
 public:
  ShmRing() = default;
  ShmRing(ShmRingControl* control, std::uint8_t* data, std::size_t capacity);

  std::size_t capacity() const { return capacity_; }

  // Producer: appends up to bytes.size() bytes, returns how many fit.
  std::size_t WriteSome(std::span<const std::uint8_t> bytes);

  // Producer: writes all of `bytes`, futex-sleeping on the consumer's
  // doorbell when full. Returns false when `timeout_ms` elapses first.
  bool WriteAll(std::span<const std::uint8_t> bytes, int timeout_ms);

  // Consumer: appends every currently-available byte to `out`, returns the
  // count (0 = ring empty).
  std::size_t ReadSome(std::vector<std::uint8_t>& out);

  // Consumer: futex-sleeps until bytes are available (true) or `timeout_ms`
  // elapses (false). A zero timeout is a pure poll.
  bool WaitReadable(int timeout_ms);

  std::size_t AvailableToRead() const;

 private:
  ShmRingControl* control_ = nullptr;
  std::uint8_t* data_ = nullptr;
  std::size_t capacity_ = 0;
};

// Owns the mapping (and, on the creating side, the shm name) of one
// two-ring segment. `uplink` is always client → server.
class ShmSegment {
 public:
  // Creates and maps a fresh segment (O_EXCL) named `name`; `ring_bytes`
  // must be a power of two. Throws util::CheckError on any syscall failure
  // — callers treat that as "no shm for this connection" and stay on TCP.
  static std::unique_ptr<ShmSegment> Create(const std::string& name,
                                            std::size_t ring_bytes);

  // Maps an existing segment and validates its header against
  // `expected_ring_bytes` from the ShmOffer. Throws util::CheckError on
  // mismatch or syscall failure.
  static std::unique_ptr<ShmSegment> Open(const std::string& name,
                                          std::size_t expected_ring_bytes);

  ~ShmSegment();

  ShmSegment(const ShmSegment&) = delete;
  ShmSegment& operator=(const ShmSegment&) = delete;

  const std::string& name() const { return name_; }
  std::size_t ring_bytes() const { return ring_bytes_; }

  ShmRing& uplink() { return uplink_; }
  ShmRing& downlink() { return downlink_; }

 private:
  ShmSegment(std::string name, bool owner, void* base, std::size_t map_bytes,
             std::size_t ring_bytes);

  std::string name_;
  bool owner_ = false;  // creator unlinks the name on destruction
  void* base_ = nullptr;
  std::size_t map_bytes_ = 0;
  std::size_t ring_bytes_ = 0;
  ShmRing uplink_;
  ShmRing downlink_;
};

// A process-unique shm name for one connection ("/afnt-<pid>-<port>-<id>-
// <counter>"); the counter makes back-to-back runs in one process collide-
// free.
std::string MakeShmName(std::uint16_t port, int client_id);

}  // namespace net

// poll()-driven TCP server event loop for the distributed run mode.
//
// Single-threaded reactor: the driver thread calls PollOnce() to pump one
// tick — accept new connections, drain readable sockets into per-connection
// buffers, decode complete frames, flush pending writes — and registers
// callbacks for the three application events (client handshake, client
// update, disconnect). All sockets are non-blocking; a connection that
// stays stalled mid-frame or mid-write past `io_timeout_ms` is evicted.
//
// Protocol state machine per connection:
//
//   accepted ──Ack{client_id}──▶ identified ──ClientUpdate*──▶ ...
//       │                            │
//       └── anything else / malformed / stalled / EOF ──▶ closed (+callback)
//
// When `advertised_codecs` is non-empty an extra negotiation round sits
// between "identified" and update traffic: the server answers the hello
// with a CodecOffer, the client replies with a CodecSelect, and only then
// does the handshake count as complete (WaitForClients, connect callback).
// With no advertised codecs the exchange is skipped and the wire is
// byte-identical to the pre-codec protocol.
//
// Duplicate ClientUpdates (the fault injector's kDuplicate, or a client
// resending an unacked update) are detected by per-connection job_index
// bookkeeping: every copy is re-acked, only the first is delivered.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "net/frame.h"
#include "net/shm_ring.h"
#include "net/socket.h"
#include "obs/metrics.h"

namespace compress {
class Codec;
}  // namespace compress

namespace net {

struct ServerOptions {
  std::uint16_t port = 0;   // 0 → ephemeral loopback port
  // A connection with a partially received frame or unflushed writes older
  // than this is considered dead.
  int io_timeout_ms = 10000;
  // Codec names offered to each client after its hello (preference order).
  // Empty → no CodecOffer is sent and the handshake is the legacy two-step.
  // "identity" is always acceptable in a CodecSelect even when not listed.
  std::vector<std::string> advertised_codecs;
  // Offer trace-context propagation (a TraceOffer after the hello); clients
  // answer with a TraceSelect saying whether they will attach AFTC blocks.
  // Off → no offer, wire identical to before trace propagation existed.
  bool offer_trace_context = false;
  // Offer a shared-memory ring segment to each client after its hello
  // (--transport=shm). A client that maps it moves data frames onto the
  // rings; one that declines — or a segment that fails to create — stays on
  // plain TCP. The socket remains open as the liveness signal either way.
  bool offer_shm = false;
  std::size_t shm_ring_bytes = kShmDefaultRingBytes;
};

class Server {
 public:
  // The update's delta may be a zero-copy view into the connection's read
  // buffer: it is valid only for the duration of the callback. A handler
  // that keeps the update must materialize the view (arena copy / ToVector)
  // before returning — unless the view carries its own keepalive
  // (has_keepalive()), in which case it may be kept as-is.
  using UpdateHandler = std::function<void(int client_id, ClientUpdateMsg)>;
  using ClientHandler = std::function<void(int client_id)>;

  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  std::uint16_t port() const { return listener_.port(); }

  void SetUpdateHandler(UpdateHandler handler);
  void SetConnectHandler(ClientHandler handler);     // after handshake
  void SetDisconnectHandler(ClientHandler handler);  // any close/eviction

  // One reactor tick; blocks at most `timeout_ms` waiting for readiness.
  void PollOnce(int timeout_ms);

  // Queues `frame` for the identified client; an immediate non-blocking
  // write is attempted, the remainder flushes on later ticks. Returns false
  // when the client is not connected.
  bool SendTo(int client_id, const Frame& frame);

  // Queues a Shutdown frame to every identified client.
  void BroadcastShutdown();

  // Pumps the loop until every queued byte is flushed (or `timeout_ms`
  // passes). Returns true when fully flushed.
  bool Flush(int timeout_ms);

  // Pumps the loop until `count` clients have completed their handshake.
  bool WaitForClients(std::size_t count, int timeout_ms);

  // Drops the client's connection (e.g. job deadline exceeded). Fires the
  // disconnect handler.
  void Evict(int client_id, const char* reason);

  bool IsConnected(int client_id) const;
  std::size_t ConnectedCount() const { return by_client_.size(); }

  // The codec the client picked during negotiation; nullptr when the
  // handshake was legacy (no offer) or the client chose identity. The
  // driver uses this to encode downlink broadcasts the client can decode.
  const compress::Codec* ClientCodec(int client_id) const;

  // Whether the client accepted trace-context propagation during its
  // handshake. The driver only attaches AFTC blocks to broadcasts for
  // clients that did.
  bool ClientTraceContext(int client_id) const;

  // Whether the client's connection negotiated (and activated) the
  // shared-memory rings; false for plain-TCP clients and unknown ids.
  bool ClientUsesShm(int client_id) const;

 private:
  struct Conn {
    util::UniqueFd fd;
    int client_id = -1;  // -1 until the hello Ack arrives
    bool handshake_complete = false;
    bool awaiting_codec_select = false;  // offer sent, select pending
    bool awaiting_trace_select = false;
    bool awaiting_shm_select = false;
    bool trace_context = false;  // client accepted the TraceOffer
    bool shm_active = false;     // data frames ride the rings, not the fd
    std::unique_ptr<ShmSegment> shm;
    const compress::Codec* codec = nullptr;  // negotiated; null = identity
    // Reusable receive scratch: bytes land at the end, frames decode as
    // views from `in_offset`, and the consumed prefix is reclaimed once per
    // read batch — no per-frame payload vector is ever built.
    std::vector<std::uint8_t> in;
    std::size_t in_offset = 0;  // already-decoded prefix of `in`
    std::vector<std::uint8_t> out;
    std::size_t out_offset = 0;  // already-written prefix of `out`
    std::uint64_t last_progress_ns = 0;
    std::set<std::uint64_t> delivered_jobs;  // dedup of resent updates
  };

  void AcceptPending();
  std::size_t HandshakeCount() const;
  // Marks the handshake done once no selects are pending; fires on_connect_.
  void MaybeCompleteHandshake(Conn& conn);
  // Appends the encoded frame to the connection's write queue (no flush).
  void QueueFrame(Conn& conn, const Frame& frame);
  // Reads and processes one connection; returns false when it must close.
  bool ReadConn(Conn& conn);
  // Decodes and handles every complete frame in `conn.in`; returns false
  // when the connection must close.
  bool ProcessInbuf(Conn& conn);
  bool HandleFrame(Conn& conn, const FrameView& frame);
  // Attempts to write pending bytes (socket or downlink ring); returns
  // false on a dead socket.
  bool WriteConn(Conn& conn);
  // Drains every shm connection's uplink ring (the rings have no fd for
  // poll to watch); called each tick.
  void DrainShmConns();
  bool HasActiveShm() const;
  void CloseConn(std::size_t index, const char* reason);

  ServerOptions options_;
  Listener listener_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::map<int, Conn*> by_client_;
  UpdateHandler on_update_;
  ClientHandler on_connect_;
  ClientHandler on_disconnect_;

  obs::Counter& frames_received_;
  obs::Counter& frames_sent_;
  obs::Counter& bytes_in_;
  obs::Counter& bytes_out_;
  obs::Counter& evictions_;
  obs::Counter& duplicates_;
  obs::Histogram& tick_us_;
  obs::Gauge& connected_clients_;
  obs::Counter& transport_updates_;
};

}  // namespace net

// TCP server event loop for the distributed run mode, built on the sharded
// net::Reactor (fd readiness) and net::Session (protocol state machine).
//
// Single-threaded: the driver thread calls PollOnce() to pump one tick —
// accept new connections, drain readable sockets into per-connection
// buffers, decode complete frames into each connection's Session, flush
// pending writes — and registers callbacks for the three application
// events (client handshake, client update, disconnect). All sockets are
// non-blocking; a connection that stays stalled mid-frame or mid-write past
// `io_timeout_ms` is evicted.
//
// Scale: connections are hash-assigned to reactor shards (epoll on Linux,
// poll fallback elsewhere or with AF_REACTOR=poll), so a tick costs
// O(ready fds), not O(connections) — tens of thousands of concurrent
// connections are sustained by one loop. A connection may be *multiplexed*:
// a kHello frame binds many client ids (a virtual-client pool) to one
// socket, and broadcasts to those ids carry a trailing AFVC client-id block
// so the pool can demux. Protocol behavior — handshake ordering, codec/
// trace/shm negotiation, (client_id, job_index)-keyed update dedup with
// re-acks, eviction policy — lives in net/session.h.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/frame.h"
#include "net/reactor.h"
#include "net/shm_ring.h"
#include "net/socket.h"
#include "obs/metrics.h"

namespace compress {
class Codec;
}  // namespace compress

namespace net {

struct ServerOptions {
  std::uint16_t port = 0;   // 0 → ephemeral loopback port
  // A connection with a partially received frame or unflushed writes older
  // than this is considered dead.
  int io_timeout_ms = 10000;
  // Codec names offered to each client after its hello (preference order).
  // Empty → no CodecOffer is sent and the handshake is the legacy two-step.
  // "identity" is always acceptable in a CodecSelect even when not listed.
  std::vector<std::string> advertised_codecs;
  // Offer trace-context propagation (a TraceOffer after the hello); clients
  // answer with a TraceSelect saying whether they will attach AFTC blocks.
  // Off → no offer, wire identical to before trace propagation existed.
  bool offer_trace_context = false;
  // Offer a shared-memory ring segment to each client after its hello
  // (--transport=shm). A client that maps it moves data frames onto the
  // rings; one that declines — or a segment that fails to create — stays on
  // plain TCP. The socket remains open as the liveness signal either way.
  // Multiplexed (kHello) sessions are never offered a segment.
  bool offer_shm = false;
  std::size_t shm_ring_bytes = kShmDefaultRingBytes;
  // Reactor shards (see net/reactor.h). 1 is the deterministic default;
  // <= 0 picks one shard per core, capped at 8.
  int reactor_shards = 1;
};

class Server {
 public:
  // The update's delta may be a zero-copy view into the connection's read
  // buffer: it is valid only for the duration of the callback. A handler
  // that keeps the update must materialize the view (arena copy / ToVector)
  // before returning — unless the view carries its own keepalive
  // (has_keepalive()), in which case it may be kept as-is.
  using UpdateHandler = std::function<void(int client_id, ClientUpdateMsg)>;
  using ClientHandler = std::function<void(int client_id)>;

  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  std::uint16_t port() const { return listener_.port(); }

  void SetUpdateHandler(UpdateHandler handler);
  void SetConnectHandler(ClientHandler handler);     // after handshake
  void SetDisconnectHandler(ClientHandler handler);  // any close/eviction

  // One reactor tick; blocks at most `timeout_ms` waiting for readiness.
  void PollOnce(int timeout_ms);

  // Queues `frame` for the identified client; an immediate non-blocking
  // write is attempted, the remainder flushes on later ticks. Returns false
  // when the client is not connected.
  bool SendTo(int client_id, const Frame& frame);

  // Queues a Shutdown frame to every identified client.
  void BroadcastShutdown();

  // Pumps the loop until every queued byte is flushed (or `timeout_ms`
  // passes). Returns true when fully flushed.
  bool Flush(int timeout_ms);

  // Pumps the loop until `count` clients have completed their handshake.
  bool WaitForClients(std::size_t count, int timeout_ms);

  // Drops the client's connection (e.g. job deadline exceeded). Fires the
  // disconnect handler. On a multiplexed connection this evicts every
  // client id bound to it — the pool behind the socket is one peer.
  void Evict(int client_id, const char* reason);

  bool IsConnected(int client_id) const;
  std::size_t ConnectedCount() const { return by_client_.size(); }

  // The codec the client picked during negotiation; nullptr when the
  // handshake was legacy (no offer) or the client chose identity. The
  // driver uses this to encode downlink broadcasts the client can decode.
  const compress::Codec* ClientCodec(int client_id) const;

  // Whether the client accepted trace-context propagation during its
  // handshake. The driver only attaches AFTC blocks to broadcasts for
  // clients that did.
  bool ClientTraceContext(int client_id) const;

  // Whether the client's connection negotiated (and activated) the
  // shared-memory rings; false for plain-TCP clients and unknown ids.
  bool ClientUsesShm(int client_id) const;

  // Whether the client rides a multiplexed (kHello) session. Broadcasts to
  // such clients must carry the AFVC client-id block so the pool can demux.
  bool IsMultiplexed(int client_id) const;

  // Reactor shard the client's connection is assigned to; -1 when unknown.
  int ShardOfClient(int client_id) const;

  int reactor_shards() const { return reactor_.shard_count(); }
  const char* reactor_backend() const { return reactor_.backend_name(); }

 private:
  struct Conn;
  friend struct Conn;

  void AcceptPending();
  std::size_t HandshakeCount() const;
  // Appends the encoded frame to the connection's write queue (no flush).
  void QueueFrame(Conn& conn, const Frame& frame);
  // Reads and processes one connection; returns false when it must close.
  bool ReadConn(Conn& conn);
  // Decodes every complete frame in `conn.in` into the session; returns
  // false when the connection must close.
  bool ProcessInbuf(Conn& conn);
  // Attempts to write pending bytes (socket or downlink ring); returns
  // false on a dead socket.
  bool WriteConn(Conn& conn);
  // Syncs the reactor's write interest with the connection's outbox.
  void UpdateWriteInterest(Conn& conn);
  // Drains every shm connection's uplink ring (the rings have no fd for
  // the reactor to watch); called each tick.
  void DrainShmConns();
  bool HasActiveShm() const;
  void CloseConn(Conn& conn, const char* reason);

  ServerOptions options_;
  Listener listener_;
  Reactor reactor_;
  std::map<int, std::unique_ptr<Conn>> conns_;  // keyed by fd
  std::map<int, Conn*> by_client_;
  std::vector<ReactorEvent> events_;  // scratch reused across ticks
  UpdateHandler on_update_;
  ClientHandler on_connect_;
  ClientHandler on_disconnect_;

  obs::Counter& frames_received_;
  obs::Counter& frames_sent_;
  obs::Counter& bytes_in_;
  obs::Counter& bytes_out_;
  obs::Counter& evictions_;
  obs::Counter& duplicates_;
  obs::Histogram& tick_us_;
  obs::Gauge& connected_clients_;
  obs::Counter& transport_updates_;
};

}  // namespace net

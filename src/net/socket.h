// Loopback TCP primitives: RAII listener/connection, frame-granular
// blocking I/O with poll()-based deadlines, and bounded exponential-backoff
// retry for connects.
//
// Connection is what the client workers use (blocking sends/receives with
// timeouts); the server side keeps raw non-blocking fds inside net::Server
// and only borrows the framing helpers here.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "net/frame.h"
#include "util/fd.h"

namespace net {

// Bounded retry schedule with decorrelated jitter (see BackoffSchedule).
struct RetryConfig {
  int max_attempts = 5;
  double initial_backoff_ms = 10.0;
  double multiplier = 2.0;  // growth ceiling per retry
  double max_backoff_ms = 2000.0;
};

// Decorrelated-jitter backoff: every delay is drawn uniformly from
// [initial_backoff_ms, min(max_backoff_ms, prev · multiplier)], with prev
// seeded at initial_backoff_ms. Unlike a fixed exponential-plus-jitter
// schedule, consecutive delays are decorrelated from each other AND from
// other clients' schedules — so 10k clients that lost their server at the
// same instant fan out instead of reconnecting in lockstep waves. Seeded →
// fully deterministic per (config, seed).
class BackoffSchedule {
 public:
  BackoffSchedule(const RetryConfig& config, std::uint64_t seed);

  // The next delay; call once per retry.
  double NextDelayMs();

  // Restarts the schedule at the base delay (a new retry cycle). The RNG
  // keeps advancing so repeated cycles stay decorrelated.
  void Reset();

 private:
  RetryConfig config_;
  std::mt19937_64 rng_;
  double prev_ms_ = 0.0;
};

// A connected TCP stream socket (blocking mode). All deadlines are enforced
// with poll(); hitting one throws util::CheckError.
class Connection {
 public:
  Connection() = default;
  explicit Connection(util::UniqueFd fd);

  bool open() const { return fd_.valid(); }
  int fd() const { return fd_.get(); }
  void Close() { fd_.reset(); }

  // Sends the whole buffer; throws on error or when `timeout_ms` elapses
  // with the kernel buffer still full. timeout_ms < 0 → no deadline.
  void SendBytes(std::span<const std::uint8_t> bytes, int timeout_ms);
  void SendFrame(const Frame& frame, int timeout_ms);

  enum class RecvStatus { kFrame, kTimeout, kEof };

  // Receives exactly one frame, or reports an elapsed deadline / clean EOF
  // at a frame boundary. Throws on socket error or a malformed/partial
  // frame cut off by EOF. timeout_ms < 0 → wait forever.
  RecvStatus TryRecvFrame(Frame* out, int timeout_ms);

  // TryRecvFrame that treats a timeout as an error (throws). Returns false
  // on clean EOF.
  bool RecvFrame(Frame* out, int timeout_ms);

 private:
  util::UniqueFd fd_;
  std::vector<std::uint8_t> inbox_;  // received bytes not yet framed
};

// Listening socket bound to 127.0.0.1; port 0 picks an ephemeral port.
class Listener {
 public:
  explicit Listener(std::uint16_t port);

  std::uint16_t port() const { return port_; }
  int fd() const { return fd_.get(); }

  // Accepts one pending connection (call after poll() readiness or expect
  // blocking). The returned fd is left in blocking mode.
  util::UniqueFd Accept();

 private:
  util::UniqueFd fd_;
  std::uint16_t port_ = 0;
};

// Connects to 127.0.0.1:`port`, retrying per `retry` with seeded jitter.
// Throws util::CheckError when every attempt fails.
Connection ConnectWithRetry(std::uint16_t port, const RetryConfig& retry,
                            std::uint64_t seed);

}  // namespace net

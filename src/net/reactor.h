// Sharded fd-readiness reactor: the half of the old poll()-era server that
// cared about sockets, split out so sessions (net/session.h) never touch an
// fd and transports register uniformly.
//
// On Linux the reactor is built from epoll: N shard epoll fds, connections
// hash-assigned to shards, nested inside one master epoll so a single
// Wait() call sleeps on everything and dispatch cost is O(ready), not
// O(connections). Everywhere else — or with AF_REACTOR=poll in the
// environment — a poll()-based implementation sits behind the identical
// interface (kqueue would slot in the same way), so the fallback is always
// testable on the primary platform.
//
// All registration and Wait() calls belong to one owner thread; Wakeup() is
// the one cross-thread entry point (it interrupts a blocked Wait, which is
// how the virtual-client pool's workers nudge the pump loop when they
// finish a job). Events are level-triggered: a connection with unread bytes
// or unflushed write interest reports ready again on the next Wait.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace net {

struct ReactorEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  bool error = false;   // EPOLLERR / POLLERR / POLLNVAL
  bool hangup = false;  // EPOLLHUP / POLLHUP
};

struct ReactorOptions {
  // Shard count; <= 0 picks one shard per core, capped at 8. One shard is
  // the fully deterministic default the distributed driver uses.
  int shards = 1;
};

class Reactor {
 public:
  explicit Reactor(ReactorOptions options = {});
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  // Registers `fd` with level-triggered read interest and hash-assigns it
  // to a shard. The fd must stay valid until Remove.
  void Add(int fd);
  // Toggles write interest (read interest is permanent until Remove).
  // No-op when the interest already matches.
  void SetWantWrite(int fd, bool want_write);
  void Remove(int fd);

  // Blocks up to `timeout_ms` (0 → immediate, < 0 → indefinitely) and
  // appends one entry per ready fd to `out` (not cleared). Returns the
  // number of events appended. A pending Wakeup() makes Wait return
  // promptly with whatever is ready.
  std::size_t Wait(int timeout_ms, std::vector<ReactorEvent>* out);

  // Interrupts a concurrent Wait from any thread. Sticky: a wakeup posted
  // while no Wait is in progress makes the next Wait return immediately.
  void Wakeup();

  // Stable shard assignment for a registered fd; -1 for unknown fds.
  int ShardOf(int fd) const;
  int shard_count() const;
  std::size_t watched_count() const;

  // "epoll" or "poll" — which implementation this build/environment picked.
  const char* backend_name() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace net

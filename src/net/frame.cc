#include "net/frame.h"

#include <cstring>

#include "compress/codec.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace net {
namespace {

template <typename T>
void AppendRaw(std::vector<std::uint8_t>& out, const T& value) {
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(&value);
  out.insert(out.end(), bytes, bytes + sizeof(T));
}

// Reads sizeof(T) bytes at `*offset`, advancing it; checks bounds first.
template <typename T>
T ReadRaw(std::span<const std::uint8_t> bytes, std::size_t* offset) {
  AF_CHECK_LE(*offset + sizeof(T), bytes.size()) << "truncated payload field";
  T value;
  std::memcpy(&value, bytes.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return value;
}

bool KnownType(std::uint16_t type) {
  switch (static_cast<MessageType>(type)) {
    case MessageType::kModelBroadcast:
    case MessageType::kClientUpdate:
    case MessageType::kAck:
    case MessageType::kShutdown:
    case MessageType::kCodecOffer:
    case MessageType::kCodecSelect:
    case MessageType::kTraceOffer:
    case MessageType::kTraceSelect:
    case MessageType::kShmOffer:
    case MessageType::kShmSelect:
    case MessageType::kHello:
      return true;
  }
  return false;
}

// Trailing trace-context block: u32 "AFTC" magic, u64 trace_id,
// u64 parent_span_id. Appended only for traced messages; sniffed (never
// required) on decode, so untraced wire bytes are unchanged.
inline constexpr std::uint32_t kTraceBlockMagic = 0x43544641u;  // "AFTC" (LE)
inline constexpr std::size_t kTraceBlockBytes =
    sizeof(std::uint32_t) + 2 * sizeof(std::uint64_t);

void AppendTraceBlock(std::vector<std::uint8_t>& out, std::uint64_t trace_id,
                      std::uint64_t parent_span_id) {
  if (trace_id == 0) {
    return;
  }
  AppendRaw(out, kTraceBlockMagic);
  AppendRaw(out, trace_id);
  AppendRaw(out, parent_span_id);
}

// Consumes a trailing AFTC block iff exactly one sits at `*offset` at the
// very end of the payload. Anything else (no block, short tail, other
// trailing bytes) is left for CheckFullyConsumed to reject as before.
void MaybeReadTraceBlock(const FrameView& frame, std::size_t* offset,
                         std::uint64_t* trace_id,
                         std::uint64_t* parent_span_id) {
  if (frame.payload.size() - *offset != kTraceBlockBytes) {
    return;
  }
  std::size_t probe = *offset;
  const auto magic = ReadRaw<std::uint32_t>(frame.payload, &probe);
  if (magic != kTraceBlockMagic) {
    return;
  }
  *trace_id = ReadRaw<std::uint64_t>(frame.payload, &probe);
  *parent_span_id = ReadRaw<std::uint64_t>(frame.payload, &probe);
  *offset = probe;
}

// Trailing client-id block for multiplexed broadcasts: u32 "AFVC" magic,
// i32 client_id. Always the very last bytes of the payload when present.
inline constexpr std::uint32_t kClientBlockMagic = 0x43564641u;  // "AFVC"
inline constexpr std::size_t kClientBlockBytes =
    sizeof(std::uint32_t) + sizeof(std::int32_t);

void AppendClientBlock(std::vector<std::uint8_t>& out,
                       std::int32_t client_id) {
  if (client_id < 0) {
    return;
  }
  AppendRaw(out, kClientBlockMagic);
  AppendRaw(out, client_id);
}

// Sniffs the trailing AFVC (last) and AFTC (second-to-last) blocks. The
// AFVC interpretation commits only when the full tail parses — the last 8
// bytes carry the magic and a non-negative id, and the bytes between
// `*offset` and the block are empty or exactly one AFTC block. Otherwise
// everything rolls back to the legacy lone-AFTC sniff, so a pre-mux
// payload whose final params bytes happen to spell "AFVC" still decodes
// exactly as before.
void MaybeReadTrailingBlocks(const FrameView& frame, std::size_t* offset,
                             std::uint64_t* trace_id,
                             std::uint64_t* parent_span_id,
                             std::int32_t* client_id) {
  const std::size_t remaining = frame.payload.size() - *offset;
  if (client_id != nullptr && remaining >= kClientBlockBytes) {
    const std::size_t tail = frame.payload.size() - kClientBlockBytes;
    std::size_t probe = tail;
    const auto magic = ReadRaw<std::uint32_t>(frame.payload, &probe);
    if (magic == kClientBlockMagic) {
      const auto cid = ReadRaw<std::int32_t>(frame.payload, &probe);
      const std::size_t middle = tail - *offset;
      if (cid >= 0 && (middle == 0 || middle == kTraceBlockBytes)) {
        bool consistent = true;
        std::uint64_t tid = 0;
        std::uint64_t psid = 0;
        if (middle == kTraceBlockBytes) {
          std::size_t trace_probe = *offset;
          if (ReadRaw<std::uint32_t>(frame.payload, &trace_probe) ==
              kTraceBlockMagic) {
            tid = ReadRaw<std::uint64_t>(frame.payload, &trace_probe);
            psid = ReadRaw<std::uint64_t>(frame.payload, &trace_probe);
          } else {
            consistent = false;
          }
        }
        if (consistent) {
          if (middle == kTraceBlockBytes) {
            *trace_id = tid;
            *parent_span_id = psid;
          }
          *client_id = cid;
          *offset = frame.payload.size();
          return;
        }
      }
    }
  }
  MaybeReadTraceBlock(frame, offset, trace_id, parent_span_id);
}

// Either a legacy raw AFPM block (codec null or identity) or an AFCZ
// container; peers sniff the magic on decode.
void AppendParams(std::vector<std::uint8_t>& out,
                  std::span<const float> values, const compress::Codec* codec,
                  compress::FeedbackState* feedback = nullptr) {
  if (codec == nullptr || compress::IsIdentity(*codec)) {
    nn::AppendFlatParams(out, values);
    return;
  }
  compress::AppendEncodedParams(out, *codec, values, feedback);
}

// Parses one parameter block as a view, charging any materialization to
// transport.bytes_copied (the zero-copy path charges nothing).
UpdateView ReadParamsView(std::span<const std::uint8_t> payload,
                          std::size_t* offset) {
  compress::ParsedParamsView parsed =
      compress::ParseAnyParamsView(payload, offset);
  if (parsed.copied_bytes > 0) {
    static obs::Counter& copied =
        obs::DefaultRegistry().GetCounter("transport.bytes_copied");
    copied.Increment(parsed.copied_bytes);
  }
  return UpdateView(parsed.values, std::move(parsed.keepalive));
}

void AppendName(std::vector<std::uint8_t>& out, const std::string& name) {
  AF_CHECK_LE(name.size(), 255u) << "codec name too long: " << name;
  out.push_back(static_cast<std::uint8_t>(name.size()));
  out.insert(out.end(), name.begin(), name.end());
}

std::string ReadName(std::span<const std::uint8_t> bytes,
                     std::size_t* offset) {
  const auto len = ReadRaw<std::uint8_t>(bytes, offset);
  AF_CHECK_LE(*offset + len, bytes.size()) << "truncated codec name";
  std::string name(reinterpret_cast<const char*>(bytes.data() + *offset), len);
  *offset += len;
  return name;
}

void CheckType(const FrameView& frame, MessageType expected) {
  AF_CHECK(frame.type == expected)
      << "expected " << MessageTypeName(expected) << " frame, got "
      << MessageTypeName(frame.type);
}

void CheckFullyConsumed(const FrameView& frame, std::size_t offset) {
  AF_CHECK_EQ(offset, frame.payload.size())
      << "trailing bytes in " << MessageTypeName(frame.type) << " payload";
}

// In-place frame framing: writes the header with a zero length, lets the
// caller append the payload, then patches the length. This is how payloads
// serialize straight into a connection's write buffer with no intermediate
// vector.
std::size_t BeginFrame(std::vector<std::uint8_t>& out, MessageType type) {
  AppendRaw(out, kFrameMagic);
  AppendRaw(out, kFrameVersion);
  AppendRaw(out, static_cast<std::uint16_t>(type));
  const std::size_t length_pos = out.size();
  AppendRaw(out, std::uint64_t{0});
  return length_pos;
}

void EndFrame(std::vector<std::uint8_t>& out, std::size_t length_pos) {
  const std::uint64_t length = static_cast<std::uint64_t>(
      out.size() - length_pos - sizeof(std::uint64_t));
  AF_CHECK_LE(length, kMaxFramePayload) << "payload too large";
  std::memcpy(out.data() + length_pos, &length, sizeof(length));
}

void AppendModelBroadcastPayload(std::vector<std::uint8_t>& out,
                                 const ModelBroadcastMsg& msg,
                                 const compress::Codec* codec) {
  AppendRaw(out, msg.round);
  AppendRaw(out, msg.job_index);
  AppendParams(out, msg.params, codec);
  AppendTraceBlock(out, msg.trace_id, msg.parent_span_id);
  AppendClientBlock(out, msg.client_id);
}

void AppendClientUpdatePayload(std::vector<std::uint8_t>& out,
                               const ClientUpdateMsg& msg,
                               const compress::Codec* codec,
                               compress::FeedbackState* feedback) {
  AppendRaw(out, msg.client_id);
  AppendRaw(out, msg.job_index);
  AppendRaw(out, msg.base_round);
  AppendRaw(out, msg.num_samples);
  AppendParams(out, msg.delta, codec, feedback);
  AppendTraceBlock(out, msg.trace_id, msg.parent_span_id);
}

}  // namespace

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kModelBroadcast:
      return "ModelBroadcast";
    case MessageType::kClientUpdate:
      return "ClientUpdate";
    case MessageType::kAck:
      return "Ack";
    case MessageType::kShutdown:
      return "Shutdown";
    case MessageType::kCodecOffer:
      return "CodecOffer";
    case MessageType::kCodecSelect:
      return "CodecSelect";
    case MessageType::kTraceOffer:
      return "TraceOffer";
    case MessageType::kTraceSelect:
      return "TraceSelect";
    case MessageType::kShmOffer:
      return "ShmOffer";
    case MessageType::kShmSelect:
      return "ShmSelect";
    case MessageType::kHello:
      return "Hello";
  }
  return "?";
}

std::vector<std::uint8_t> EncodeFrame(const Frame& frame) {
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderBytes + frame.payload.size());
  AppendFrameBytes(out, frame);
  return out;
}

void AppendFrameBytes(std::vector<std::uint8_t>& out, const Frame& frame) {
  AF_TRACE_SPAN("net.frame.encode");
  AF_CHECK_LE(frame.payload.size(), kMaxFramePayload) << "payload too large";
  const std::size_t length_pos = BeginFrame(out, frame.type);
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  EndFrame(out, length_pos);
}

std::size_t DecodeFrameView(std::span<const std::uint8_t> buffer,
                            FrameView* out) {
  AF_CHECK(out != nullptr);
  if (buffer.size() < kFrameHeaderBytes) {
    return 0;
  }
  AF_TRACE_SPAN("net.frame.decode");
  std::size_t offset = 0;
  const auto magic = ReadRaw<std::uint32_t>(buffer, &offset);
  AF_CHECK_EQ(magic, kFrameMagic) << "bad frame magic";
  const auto version = ReadRaw<std::uint16_t>(buffer, &offset);
  AF_CHECK_EQ(version, kFrameVersion) << "unsupported frame version";
  const auto type = ReadRaw<std::uint16_t>(buffer, &offset);
  AF_CHECK(KnownType(type)) << "unknown frame type " << type;
  const auto length = ReadRaw<std::uint64_t>(buffer, &offset);
  AF_CHECK_LE(length, kMaxFramePayload)
      << "frame length " << length << " exceeds limit";
  if (buffer.size() - kFrameHeaderBytes < length) {
    return 0;  // whole header but partial payload: wait for more bytes
  }
  out->type = static_cast<MessageType>(type);
  out->payload =
      buffer.subspan(kFrameHeaderBytes, static_cast<std::size_t>(length));
  return kFrameHeaderBytes + static_cast<std::size_t>(length);
}

std::size_t DecodeFrame(std::span<const std::uint8_t> buffer, Frame* out) {
  AF_CHECK(out != nullptr);
  FrameView view;
  const std::size_t consumed = DecodeFrameView(buffer, &view);
  if (consumed == 0) {
    return 0;
  }
  out->type = view.type;
  out->payload.assign(view.payload.begin(), view.payload.end());
  return consumed;
}

Frame EncodeModelBroadcast(const ModelBroadcastMsg& msg,
                           const compress::Codec* codec) {
  Frame frame;
  frame.type = MessageType::kModelBroadcast;
  frame.payload.reserve(2 * sizeof(std::uint64_t) +
                        nn::FlatParamsWireSize(msg.params.size()));
  AppendModelBroadcastPayload(frame.payload, msg, codec);
  return frame;
}

void AppendModelBroadcastFrame(std::vector<std::uint8_t>& out,
                               const ModelBroadcastMsg& msg,
                               const compress::Codec* codec) {
  out.reserve(out.size() + kFrameHeaderBytes + 2 * sizeof(std::uint64_t) +
              nn::FlatParamsWireSize(msg.params.size()));
  const std::size_t length_pos =
      BeginFrame(out, MessageType::kModelBroadcast);
  AppendModelBroadcastPayload(out, msg, codec);
  EndFrame(out, length_pos);
}

ModelBroadcastMsg DecodeModelBroadcast(const FrameView& frame) {
  CheckType(frame, MessageType::kModelBroadcast);
  ModelBroadcastMsg msg;
  std::size_t offset = 0;
  msg.round = ReadRaw<std::uint64_t>(frame.payload, &offset);
  msg.job_index = ReadRaw<std::uint64_t>(frame.payload, &offset);
  msg.params = ReadParamsView(frame.payload, &offset);
  MaybeReadTrailingBlocks(frame, &offset, &msg.trace_id, &msg.parent_span_id,
                          &msg.client_id);
  CheckFullyConsumed(frame, offset);
  return msg;
}

Frame EncodeClientUpdate(const ClientUpdateMsg& msg,
                         const compress::Codec* codec,
                         compress::FeedbackState* feedback) {
  Frame frame;
  frame.type = MessageType::kClientUpdate;
  frame.payload.reserve(sizeof(std::int32_t) + 3 * sizeof(std::uint64_t) +
                        nn::FlatParamsWireSize(msg.delta.size()));
  AppendClientUpdatePayload(frame.payload, msg, codec, feedback);
  return frame;
}

void AppendClientUpdateFrame(std::vector<std::uint8_t>& out,
                             const ClientUpdateMsg& msg,
                             const compress::Codec* codec,
                             compress::FeedbackState* feedback) {
  out.reserve(out.size() + kFrameHeaderBytes + sizeof(std::int32_t) +
              3 * sizeof(std::uint64_t) +
              nn::FlatParamsWireSize(msg.delta.size()));
  const std::size_t length_pos = BeginFrame(out, MessageType::kClientUpdate);
  AppendClientUpdatePayload(out, msg, codec, feedback);
  EndFrame(out, length_pos);
}

ClientUpdateMsg DecodeClientUpdate(const FrameView& frame) {
  CheckType(frame, MessageType::kClientUpdate);
  ClientUpdateMsg msg;
  std::size_t offset = 0;
  msg.client_id = ReadRaw<std::int32_t>(frame.payload, &offset);
  msg.job_index = ReadRaw<std::uint64_t>(frame.payload, &offset);
  msg.base_round = ReadRaw<std::uint64_t>(frame.payload, &offset);
  msg.num_samples = ReadRaw<std::uint64_t>(frame.payload, &offset);
  msg.delta = ReadParamsView(frame.payload, &offset);
  MaybeReadTraceBlock(frame, &offset, &msg.trace_id, &msg.parent_span_id);
  CheckFullyConsumed(frame, offset);
  msg.wire_bytes = frame.payload.size();
  return msg;
}

Frame EncodeAck(const AckMsg& msg) {
  Frame frame;
  frame.type = MessageType::kAck;
  AppendRaw(frame.payload, msg.value);
  return frame;
}

AckMsg DecodeAck(const FrameView& frame) {
  CheckType(frame, MessageType::kAck);
  AckMsg msg;
  std::size_t offset = 0;
  msg.value = ReadRaw<std::uint64_t>(frame.payload, &offset);
  CheckFullyConsumed(frame, offset);
  return msg;
}

Frame EncodeCodecOffer(const CodecOfferMsg& msg) {
  Frame frame;
  frame.type = MessageType::kCodecOffer;
  AF_CHECK_LE(msg.codecs.size(), 0xFFFFu) << "too many offered codecs";
  AppendRaw(frame.payload, static_cast<std::uint16_t>(msg.codecs.size()));
  for (const std::string& name : msg.codecs) {
    AppendName(frame.payload, name);
  }
  return frame;
}

CodecOfferMsg DecodeCodecOffer(const FrameView& frame) {
  CheckType(frame, MessageType::kCodecOffer);
  CodecOfferMsg msg;
  std::size_t offset = 0;
  const auto count = ReadRaw<std::uint16_t>(frame.payload, &offset);
  msg.codecs.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    msg.codecs.push_back(ReadName(frame.payload, &offset));
  }
  CheckFullyConsumed(frame, offset);
  return msg;
}

Frame EncodeCodecSelect(const CodecSelectMsg& msg) {
  Frame frame;
  frame.type = MessageType::kCodecSelect;
  AppendName(frame.payload, msg.codec);
  return frame;
}

CodecSelectMsg DecodeCodecSelect(const FrameView& frame) {
  CheckType(frame, MessageType::kCodecSelect);
  CodecSelectMsg msg;
  std::size_t offset = 0;
  msg.codec = ReadName(frame.payload, &offset);
  CheckFullyConsumed(frame, offset);
  return msg;
}

Frame EncodeTraceOffer(const TraceOfferMsg&) {
  Frame frame;
  frame.type = MessageType::kTraceOffer;
  return frame;
}

TraceOfferMsg DecodeTraceOffer(const FrameView& frame) {
  CheckType(frame, MessageType::kTraceOffer);
  CheckFullyConsumed(frame, 0);
  return TraceOfferMsg{};
}

Frame EncodeTraceSelect(const TraceSelectMsg& msg) {
  Frame frame;
  frame.type = MessageType::kTraceSelect;
  frame.payload.push_back(msg.enabled ? 1 : 0);
  return frame;
}

TraceSelectMsg DecodeTraceSelect(const FrameView& frame) {
  CheckType(frame, MessageType::kTraceSelect);
  TraceSelectMsg msg;
  std::size_t offset = 0;
  msg.enabled = ReadRaw<std::uint8_t>(frame.payload, &offset) != 0;
  CheckFullyConsumed(frame, offset);
  return msg;
}

Frame EncodeShmOffer(const ShmOfferMsg& msg) {
  Frame frame;
  frame.type = MessageType::kShmOffer;
  AppendName(frame.payload, msg.name);
  AppendRaw(frame.payload, msg.ring_bytes);
  return frame;
}

ShmOfferMsg DecodeShmOffer(const FrameView& frame) {
  CheckType(frame, MessageType::kShmOffer);
  ShmOfferMsg msg;
  std::size_t offset = 0;
  msg.name = ReadName(frame.payload, &offset);
  msg.ring_bytes = ReadRaw<std::uint64_t>(frame.payload, &offset);
  CheckFullyConsumed(frame, offset);
  return msg;
}

Frame EncodeShmSelect(const ShmSelectMsg& msg) {
  Frame frame;
  frame.type = MessageType::kShmSelect;
  frame.payload.push_back(msg.enabled ? 1 : 0);
  return frame;
}

ShmSelectMsg DecodeShmSelect(const FrameView& frame) {
  CheckType(frame, MessageType::kShmSelect);
  ShmSelectMsg msg;
  std::size_t offset = 0;
  msg.enabled = ReadRaw<std::uint8_t>(frame.payload, &offset) != 0;
  CheckFullyConsumed(frame, offset);
  return msg;
}

Frame EncodeHello(const HelloMsg& msg) {
  Frame frame;
  frame.type = MessageType::kHello;
  AF_CHECK_LE(msg.client_ids.size(), 1u << 20) << "too many hello client ids";
  AppendRaw(frame.payload, static_cast<std::uint32_t>(msg.client_ids.size()));
  for (const std::int32_t id : msg.client_ids) {
    AF_CHECK_GE(id, 0) << "negative hello client id";
    AppendRaw(frame.payload, id);
  }
  return frame;
}

HelloMsg DecodeHello(const FrameView& frame) {
  CheckType(frame, MessageType::kHello);
  HelloMsg msg;
  std::size_t offset = 0;
  const auto count = ReadRaw<std::uint32_t>(frame.payload, &offset);
  AF_CHECK_LE(count, 1u << 20) << "hello client-id count " << count
                               << " exceeds limit";
  // Bounds before reserve so a hostile count can't balloon the allocation.
  AF_CHECK_LE(offset + std::size_t{count} * sizeof(std::int32_t),
              frame.payload.size())
      << "truncated hello payload";
  msg.client_ids.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    msg.client_ids.push_back(ReadRaw<std::int32_t>(frame.payload, &offset));
  }
  CheckFullyConsumed(frame, offset);
  return msg;
}

Frame MakeShutdownFrame() {
  Frame frame;
  frame.type = MessageType::kShutdown;
  return frame;
}

}  // namespace net

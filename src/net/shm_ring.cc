#include "net/shm_ring.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#endif

#include "util/check.h"
#include "util/fd.h"
#include "util/logging.h"

namespace net {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kControlLane = 64;  // header padded to a cache line

// Sane per-direction capacity bounds: a ring must hold at least one frame
// header comfortably, and a hostile header must not drive the mapping math
// into overflow.
constexpr std::size_t kMinRingBytes = 1u << 12;
constexpr std::size_t kMaxRingBytes = std::size_t{1} << 30;

bool IsPowerOfTwo(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

// Futex doorbells. Non-PRIVATE: the two sides of a ring may be different
// processes. On non-Linux builds the waiters degrade to a short sleep —
// correctness is unchanged, only wake latency.
#if defined(__linux__)
int FutexWait(std::atomic<std::uint32_t>* word, std::uint32_t expected,
              int timeout_ms) {
  timespec ts;
  ts.tv_sec = timeout_ms / 1000;
  ts.tv_nsec = static_cast<long>(timeout_ms % 1000) * 1000000L;
  return static_cast<int>(::syscall(SYS_futex, word, FUTEX_WAIT, expected,
                                    timeout_ms >= 0 ? &ts : nullptr, nullptr,
                                    0));
}

void FutexWake(std::atomic<std::uint32_t>* word) {
  ::syscall(SYS_futex, word, FUTEX_WAKE, INT32_MAX, nullptr, nullptr, 0);
}
#else
int FutexWait(std::atomic<std::uint32_t>* word, std::uint32_t expected,
              int timeout_ms) {
  if (word->load(std::memory_order_acquire) == expected) {
    std::this_thread::sleep_for(std::chrono::milliseconds(
        std::min(timeout_ms < 0 ? 1 : timeout_ms, 1)));
  }
  return 0;
}
void FutexWake(std::atomic<std::uint32_t>*) {}
#endif

std::size_t HeaderLane() {
  static_assert(sizeof(ShmHeader) <= kControlLane);
  return kControlLane;
}

}  // namespace

void ValidateShmHeader(std::span<const std::uint8_t> bytes) {
  AF_CHECK_GE(bytes.size(), sizeof(ShmHeader))
      << "truncated AFSH header: " << bytes.size() << " bytes";
  ShmHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  AF_CHECK_EQ(header.magic, kShmMagic) << "bad AFSH magic";
  AF_CHECK_EQ(header.version, kShmVersion)
      << "unsupported AFSH version " << header.version;
  AF_CHECK_GE(header.ring_bytes, kMinRingBytes)
      << "AFSH ring capacity " << header.ring_bytes << " below minimum";
  AF_CHECK_LE(header.ring_bytes, kMaxRingBytes)
      << "AFSH ring capacity " << header.ring_bytes << " exceeds limit";
  AF_CHECK(IsPowerOfTwo(static_cast<std::size_t>(header.ring_bytes)))
      << "AFSH ring capacity " << header.ring_bytes
      << " is not a power of two";
}

std::size_t ShmSegmentBytes(std::size_t ring_bytes) {
  return HeaderLane() + 2 * sizeof(ShmRingControl) + 2 * ring_bytes;
}

// --- ShmRing -----------------------------------------------------------

ShmRing::ShmRing(ShmRingControl* control, std::uint8_t* data,
                 std::size_t capacity)
    : control_(control), data_(data), capacity_(capacity) {}

std::size_t ShmRing::AvailableToRead() const {
  return static_cast<std::size_t>(
      control_->head.load(std::memory_order_acquire) -
      control_->tail.load(std::memory_order_acquire));
}

std::size_t ShmRing::WriteSome(std::span<const std::uint8_t> bytes) {
  const std::uint64_t head = control_->head.load(std::memory_order_relaxed);
  const std::uint64_t tail = control_->tail.load(std::memory_order_acquire);
  const std::size_t free = capacity_ - static_cast<std::size_t>(head - tail);
  const std::size_t n = std::min(bytes.size(), free);
  if (n == 0) {
    return 0;
  }
  const std::size_t pos = static_cast<std::size_t>(head) & (capacity_ - 1);
  const std::size_t first = std::min(n, capacity_ - pos);
  std::memcpy(data_ + pos, bytes.data(), first);
  if (first < n) {
    std::memcpy(data_, bytes.data() + first, n - first);
  }
  control_->head.store(head + n, std::memory_order_release);
  control_->data_seq.fetch_add(1, std::memory_order_release);
  FutexWake(&control_->data_seq);
  return n;
}

bool ShmRing::WriteAll(std::span<const std::uint8_t> bytes, int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  std::size_t written = 0;
  while (written < bytes.size()) {
    written += WriteSome(bytes.subspan(written));
    if (written == bytes.size()) {
      break;
    }
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - Clock::now())
                          .count();
    if (left <= 0) {
      return false;
    }
    const std::uint32_t seq =
        control_->space_seq.load(std::memory_order_acquire);
    // Re-check after sampling the doorbell: a consume between the check and
    // the wait changes the word and the futex wait returns immediately.
    const std::uint64_t head = control_->head.load(std::memory_order_relaxed);
    const std::uint64_t tail = control_->tail.load(std::memory_order_acquire);
    if (capacity_ - static_cast<std::size_t>(head - tail) > 0) {
      continue;
    }
    FutexWait(&control_->space_seq, seq,
              static_cast<int>(std::min<long long>(left, 50)));
  }
  return true;
}

std::size_t ShmRing::ReadSome(std::vector<std::uint8_t>& out) {
  const std::uint64_t tail = control_->tail.load(std::memory_order_relaxed);
  const std::uint64_t head = control_->head.load(std::memory_order_acquire);
  const std::size_t n = static_cast<std::size_t>(head - tail);
  if (n == 0) {
    return 0;
  }
  const std::size_t pos = static_cast<std::size_t>(tail) & (capacity_ - 1);
  const std::size_t first = std::min(n, capacity_ - pos);
  const std::size_t old_size = out.size();
  out.resize(old_size + n);
  std::memcpy(out.data() + old_size, data_ + pos, first);
  if (first < n) {
    std::memcpy(out.data() + old_size + first, data_, n - first);
  }
  control_->tail.store(tail + n, std::memory_order_release);
  control_->space_seq.fetch_add(1, std::memory_order_release);
  FutexWake(&control_->space_seq);
  return n;
}

bool ShmRing::WaitReadable(int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    if (AvailableToRead() > 0) {
      return true;
    }
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - Clock::now())
                          .count();
    if (left <= 0) {
      return AvailableToRead() > 0;
    }
    const std::uint32_t seq =
        control_->data_seq.load(std::memory_order_acquire);
    if (AvailableToRead() > 0) {
      return true;
    }
    FutexWait(&control_->data_seq, seq,
              static_cast<int>(std::min<long long>(left, 50)));
  }
}

// --- ShmSegment --------------------------------------------------------

ShmSegment::ShmSegment(std::string name, bool owner, void* base,
                       std::size_t map_bytes, std::size_t ring_bytes)
    : name_(std::move(name)),
      owner_(owner),
      base_(base),
      map_bytes_(map_bytes),
      ring_bytes_(ring_bytes) {
  auto* bytes = static_cast<std::uint8_t*>(base_);
  auto* up_control =
      reinterpret_cast<ShmRingControl*>(bytes + HeaderLane());
  auto* down_control = up_control + 1;
  std::uint8_t* up_data = bytes + HeaderLane() + 2 * sizeof(ShmRingControl);
  std::uint8_t* down_data = up_data + ring_bytes_;
  uplink_ = ShmRing(up_control, up_data, ring_bytes_);
  downlink_ = ShmRing(down_control, down_data, ring_bytes_);
}

std::unique_ptr<ShmSegment> ShmSegment::Create(const std::string& name,
                                               std::size_t ring_bytes) {
  AF_CHECK(IsPowerOfTwo(ring_bytes) && ring_bytes >= kMinRingBytes &&
           ring_bytes <= kMaxRingBytes)
      << "bad shm ring capacity " << ring_bytes;
  const std::size_t map_bytes = ShmSegmentBytes(ring_bytes);
  const int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  AF_CHECK_GE(fd, 0) << "shm_open(" << name
                     << ") failed: " << util::ErrnoMessage(errno);
  if (::ftruncate(fd, static_cast<off_t>(map_bytes)) != 0) {
    const int err = errno;
    ::close(fd);
    ::shm_unlink(name.c_str());
    AF_CHECK(false) << "ftruncate(" << name
                    << ") failed: " << util::ErrnoMessage(err);
  }
  void* base = ::mmap(nullptr, map_bytes, PROT_READ | PROT_WRITE, MAP_SHARED,
                      fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) {
    const int err = errno;
    ::shm_unlink(name.c_str());
    AF_CHECK(false) << "mmap(" << name
                    << ") failed: " << util::ErrnoMessage(err);
  }
  // The segment arrives zero-filled: cursors and doorbells start at 0; only
  // the header needs writing.
  ShmHeader header;
  header.magic = kShmMagic;
  header.version = kShmVersion;
  header.ring_bytes = ring_bytes;
  std::memcpy(base, &header, sizeof(header));
  return std::unique_ptr<ShmSegment>(
      new ShmSegment(name, /*owner=*/true, base, map_bytes, ring_bytes));
}

std::unique_ptr<ShmSegment> ShmSegment::Open(
    const std::string& name, std::size_t expected_ring_bytes) {
  const int fd = ::shm_open(name.c_str(), O_RDWR, 0600);
  AF_CHECK_GE(fd, 0) << "shm_open(" << name
                     << ") failed: " << util::ErrnoMessage(errno);
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    AF_CHECK(false) << "fstat(" << name
                    << ") failed: " << util::ErrnoMessage(err);
  }
  const std::size_t map_bytes = ShmSegmentBytes(expected_ring_bytes);
  if (static_cast<std::size_t>(st.st_size) < map_bytes) {
    ::close(fd);
    AF_CHECK(false) << "shm segment " << name << " is " << st.st_size
                    << " bytes; expected at least " << map_bytes;
  }
  void* base = ::mmap(nullptr, map_bytes, PROT_READ | PROT_WRITE, MAP_SHARED,
                      fd, 0);
  const int map_err = errno;
  ::close(fd);
  AF_CHECK(base != MAP_FAILED)
      << "mmap(" << name << ") failed: " << util::ErrnoMessage(map_err);
  ShmHeader header;
  std::memcpy(&header, base, sizeof(header));
  try {
    ValidateShmHeader(std::span<const std::uint8_t>(
        static_cast<const std::uint8_t*>(base), sizeof(ShmHeader)));
    AF_CHECK_EQ(header.ring_bytes, expected_ring_bytes)
        << "shm segment " << name << " ring capacity disagrees with offer";
  } catch (...) {
    ::munmap(base, map_bytes);
    throw;
  }
  return std::unique_ptr<ShmSegment>(new ShmSegment(
      name, /*owner=*/false, base, map_bytes, expected_ring_bytes));
}

ShmSegment::~ShmSegment() {
  if (base_ != nullptr) {
    ::munmap(base_, map_bytes_);
  }
  if (owner_) {
    ::shm_unlink(name_.c_str());
  }
}

std::string MakeShmName(std::uint16_t port, int client_id) {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  return "/afnt-" + std::to_string(::getpid()) + "-" + std::to_string(port) +
         "-" + std::to_string(client_id) + "-" + std::to_string(n);
}

}  // namespace net

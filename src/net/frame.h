// Wire protocol for the distributed run mode.
//
// Every message is one frame: a fixed 16-byte little-endian header
//
//   u32 magic   "AFNT"
//   u16 version (currently 1)
//   u16 type    MessageType
//   u64 length  payload bytes that follow
//
// followed by `length` payload bytes. Parameter payloads reuse the AFPM
// block from nn/serialize — or, when a compression codec was negotiated, an
// AFCZ container from compress/ — so model bytes are identical on disk and
// on the wire. Decoders sniff the leading magic, so either form is always
// accepted regardless of what was negotiated. Decoding is incremental
// (stream-friendly): DecodeFrameView reports how many bytes it consumed, or
// 0 when the buffer does not yet hold a whole frame. Malformed input — bad
// magic, unknown version, absurd length — throws util::CheckError; it never
// reads past the buffer.
//
// Zero-copy decode path: DecodeFrameView yields a FrameView whose payload
// aliases the caller's buffer, and the typed decoders return messages whose
// parameter fields are UpdateViews that alias that same buffer whenever the
// float payload is 4-byte aligned (it is, at every offset this protocol
// emits). Such a message is valid only as long as the buffer it was decoded
// from — consumers either finish with it inside the read callback or
// materialize it once into an arena. The legacy Frame/DecodeFrame pair
// (owning payload vector) remains for blocking clients and tests.
//
// Codec negotiation (see docs/NETWORK.md): after the client's hello Ack, a
// server configured with advertised codecs replies with a CodecOffer naming
// them; the client answers with a CodecSelect naming its pick (identity when
// nothing offered suits it). A server with no advertised codecs sends no
// offer — the first post-hello frame is a ModelBroadcast, which a new client
// reads as "old server: identity". Both fallbacks keep the wire bytes
// exactly what they were before codecs existed.
//
// Trace-context negotiation follows the same pattern with TraceOffer /
// TraceSelect frames. When both sides opt in, ModelBroadcast and
// ClientUpdate payloads may carry a 20-byte trailing AFTC block
// (u32 "AFTC" magic, u64 trace_id, u64 parent_span_id) after the parameter
// block. The block is emitted only when trace_id is non-zero and decoders
// sniff for it, so an untraced run — or a legacy peer — sees wire bytes
// identical to before trace propagation existed.
//
// Shared-memory negotiation (see docs/NETWORK.md): a server running with
// --transport=shm follows the hello with a ShmOffer naming an mmap-able
// ring segment; the client answers with a ShmSelect saying whether it
// mapped it. On acceptance both sides move data frames onto the rings (same
// frame bytes, so bit-identity is free); on refusal — or with no offer —
// the connection stays plain TCP.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/update_view.h"

namespace compress {
class Codec;
struct FeedbackState;
}  // namespace compress

namespace net {

enum class MessageType : std::uint16_t {
  kModelBroadcast = 1,  // server → client: base params for one training job
  kClientUpdate = 2,    // client → server: the resulting delta
  kAck = 3,             // both ways: connection hello / update receipt
  kShutdown = 4,        // server → client: run over, close cleanly
  kCodecOffer = 5,      // server → client: codec names the server accepts
  kCodecSelect = 6,     // client → server: the codec the client will use
  kTraceOffer = 7,      // server → client: server understands trace context
  kTraceSelect = 8,     // client → server: client will attach trace context
  kShmOffer = 9,        // server → client: shared-memory ring segment name
  kShmSelect = 10,      // client → server: whether the client mapped it
  kHello = 11,          // client → server: multiplexed hello (many client ids)
};

const char* MessageTypeName(MessageType type);

inline constexpr std::uint32_t kFrameMagic = 0x544E4641u;  // "AFNT" (LE)
inline constexpr std::uint16_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 16;
// Upper bound on a payload; anything larger is a corrupt or hostile length
// field (the biggest legitimate payload is one model, well under this).
inline constexpr std::uint64_t kMaxFramePayload = 1ull << 30;

struct Frame {
  MessageType type = MessageType::kAck;
  std::vector<std::uint8_t> payload;
};

// Non-owning frame: the payload aliases whatever buffer it was decoded
// from. Implicitly constructible from a Frame so every typed decoder
// accepts both forms.
struct FrameView {
  MessageType type = MessageType::kAck;
  std::span<const std::uint8_t> payload;

  FrameView() = default;
  FrameView(MessageType t, std::span<const std::uint8_t> p)
      : type(t), payload(p) {}
  FrameView(const Frame& frame)  // NOLINT: adapter by design
      : type(frame.type), payload(frame.payload) {}
};

// Header + payload as one contiguous byte vector.
std::vector<std::uint8_t> EncodeFrame(const Frame& frame);

// Appends the encoded frame to `out` — the in-place form QueueFrame-style
// call sites use so no intermediate byte vector is built.
void AppendFrameBytes(std::vector<std::uint8_t>& out, const Frame& frame);

// Attempts to decode one frame from the start of `buffer` without copying:
// `out->payload` aliases `buffer`. Returns the number of bytes consumed
// (header + payload), or 0 when the buffer holds only a frame prefix.
// Throws util::CheckError on bad magic, unsupported version, unknown type,
// or an oversized length field.
std::size_t DecodeFrameView(std::span<const std::uint8_t> buffer,
                            FrameView* out);

// Owning form of DecodeFrameView (copies the payload into `out`).
std::size_t DecodeFrame(std::span<const std::uint8_t> buffer, Frame* out);

// --- Typed payloads ---------------------------------------------------
// Decoders validate the frame type and payload framing; truncated or
// trailing bytes throw util::CheckError. Decoded parameter fields
// (ModelBroadcastMsg::params, ClientUpdateMsg::delta) alias the frame
// buffer on the zero-copy path — see the header comment for the lifetime
// rule.

// One training job: "train from these base params". `round` is the server
// round the job was dispatched in, `job_index` the per-client job counter
// that keys the client's deterministic RNG stream.
struct ModelBroadcastMsg {
  std::uint64_t round = 0;
  std::uint64_t job_index = 0;
  UpdateView params;
  // Cross-process trace context (0 = untraced → no AFTC block on the wire).
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
  // Which multiplexed client the job targets. -1 (single-client sessions)
  // emits no AFVC block, keeping legacy wire bytes unchanged; >= 0 appends
  // a trailing 8-byte AFVC block (u32 "AFVC" magic, i32 client_id) after
  // any AFTC block, so a virtual-client pool can demux jobs on one socket.
  std::int32_t client_id = -1;
};

// The client's report for one job.
struct ClientUpdateMsg {
  std::int32_t client_id = -1;
  std::uint64_t job_index = 0;
  std::uint64_t base_round = 0;
  std::uint64_t num_samples = 0;
  UpdateView delta;
  // Cross-process trace context (0 = untraced → no AFTC block on the wire).
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
  // Decode-side only: frame payload size in bytes, filled by
  // DecodeClientUpdate so the server can audit per-update wire cost.
  // Ignored by the encoder.
  std::uint64_t wire_bytes = 0;
};

// Hello (value = client id, sent once after connecting) or update receipt
// (value = acknowledged job_index).
struct AckMsg {
  std::uint64_t value = 0;
};

// Codec names the server is willing to decode, preference-ordered.
struct CodecOfferMsg {
  std::vector<std::string> codecs;
};

// The codec the client will encode its updates with (and accepts on the
// downlink, subject to broadcast-safety).
struct CodecSelectMsg {
  std::string codec;
};

// Server → client: "I understand AFTC trace-context blocks." Empty payload.
struct TraceOfferMsg {};

// Client → server: whether the client will attach trace context to its
// updates (and accepts it on broadcasts).
struct TraceSelectMsg {
  bool enabled = false;
};

// Server → client: a shared-memory ring segment (shm_open name) sized
// `ring_bytes` per direction, for same-host data frames.
struct ShmOfferMsg {
  std::string name;
  std::uint64_t ring_bytes = 0;
};

// Client → server: whether the segment was mapped and validated. false →
// the connection stays TCP (the fallback is always legal).
struct ShmSelectMsg {
  bool enabled = false;
};

// Client → server: multiplexed hello. One connection announces every
// client id it will carry; the server binds them all to this session.
// Single-client peers keep sending the legacy hello Ack instead.
struct HelloMsg {
  std::vector<std::int32_t> client_ids;
};

// Parameter-bearing encoders take an optional negotiated codec: nullptr (or
// the identity codec) emits the legacy raw AFPM block — byte-identical to
// the pre-codec wire — anything else emits an AFCZ container. The update
// encoder additionally threads the client's error-feedback state for codecs
// that use it. Decoders sniff the magic, so they need no codec argument.
//
// The Append*Frame forms serialize header + payload straight into `out`
// (typically a connection's write buffer) with no intermediate Frame or
// payload vector — the zero-copy write path.
Frame EncodeModelBroadcast(const ModelBroadcastMsg& msg,
                           const compress::Codec* codec = nullptr);
void AppendModelBroadcastFrame(std::vector<std::uint8_t>& out,
                               const ModelBroadcastMsg& msg,
                               const compress::Codec* codec = nullptr);
ModelBroadcastMsg DecodeModelBroadcast(const FrameView& frame);
// The decoded params/delta view may alias the frame's payload bytes, so the
// frame must outlive the message. A temporary Frame can't: these overloads
// are deleted to make `DecodeX(EncodeX(...))` a compile error instead of a
// use-after-free (bind the frame to a local first).
ModelBroadcastMsg DecodeModelBroadcast(Frame&&) = delete;

Frame EncodeClientUpdate(const ClientUpdateMsg& msg,
                         const compress::Codec* codec = nullptr,
                         compress::FeedbackState* feedback = nullptr);
void AppendClientUpdateFrame(std::vector<std::uint8_t>& out,
                             const ClientUpdateMsg& msg,
                             const compress::Codec* codec = nullptr,
                             compress::FeedbackState* feedback = nullptr);
ClientUpdateMsg DecodeClientUpdate(const FrameView& frame);
ClientUpdateMsg DecodeClientUpdate(Frame&&) = delete;  // see above

Frame EncodeAck(const AckMsg& msg);
AckMsg DecodeAck(const FrameView& frame);

Frame EncodeCodecOffer(const CodecOfferMsg& msg);
CodecOfferMsg DecodeCodecOffer(const FrameView& frame);

Frame EncodeCodecSelect(const CodecSelectMsg& msg);
CodecSelectMsg DecodeCodecSelect(const FrameView& frame);

Frame EncodeTraceOffer(const TraceOfferMsg& msg);
TraceOfferMsg DecodeTraceOffer(const FrameView& frame);

Frame EncodeTraceSelect(const TraceSelectMsg& msg);
TraceSelectMsg DecodeTraceSelect(const FrameView& frame);

Frame EncodeShmOffer(const ShmOfferMsg& msg);
ShmOfferMsg DecodeShmOffer(const FrameView& frame);

Frame EncodeShmSelect(const ShmSelectMsg& msg);
ShmSelectMsg DecodeShmSelect(const FrameView& frame);

Frame EncodeHello(const HelloMsg& msg);
HelloMsg DecodeHello(const FrameView& frame);

Frame MakeShutdownFrame();

}  // namespace net

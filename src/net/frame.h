// Wire protocol for the distributed run mode.
//
// Every message is one frame: a fixed 16-byte little-endian header
//
//   u32 magic   "AFNT"
//   u16 version (currently 1)
//   u16 type    MessageType
//   u64 length  payload bytes that follow
//
// followed by `length` payload bytes. Parameter payloads reuse the AFPM
// block from nn/serialize — or, when a compression codec was negotiated, an
// AFCZ container from compress/ — so model bytes are identical on disk and
// on the wire. Decoders sniff the leading magic, so either form is always
// accepted regardless of what was negotiated. Decoding is incremental
// (stream-friendly): DecodeFrame reports how many bytes it consumed, or 0
// when the buffer does not yet hold a whole frame. Malformed input — bad
// magic, unknown version, absurd length — throws util::CheckError; it never
// reads past the buffer.
//
// Codec negotiation (see docs/NETWORK.md): after the client's hello Ack, a
// server configured with advertised codecs replies with a CodecOffer naming
// them; the client answers with a CodecSelect naming its pick (identity when
// nothing offered suits it). A server with no advertised codecs sends no
// offer — the first post-hello frame is a ModelBroadcast, which a new client
// reads as "old server: identity". Both fallbacks keep the wire bytes
// exactly what they were before codecs existed.
//
// Trace-context negotiation follows the same pattern with TraceOffer /
// TraceSelect frames. When both sides opt in, ModelBroadcast and
// ClientUpdate payloads may carry a 20-byte trailing AFTC block
// (u32 "AFTC" magic, u64 trace_id, u64 parent_span_id) after the parameter
// block. The block is emitted only when trace_id is non-zero and decoders
// sniff for it, so an untraced run — or a legacy peer — sees wire bytes
// identical to before trace propagation existed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace compress {
class Codec;
struct FeedbackState;
}  // namespace compress

namespace net {

enum class MessageType : std::uint16_t {
  kModelBroadcast = 1,  // server → client: base params for one training job
  kClientUpdate = 2,    // client → server: the resulting delta
  kAck = 3,             // both ways: connection hello / update receipt
  kShutdown = 4,        // server → client: run over, close cleanly
  kCodecOffer = 5,      // server → client: codec names the server accepts
  kCodecSelect = 6,     // client → server: the codec the client will use
  kTraceOffer = 7,      // server → client: server understands trace context
  kTraceSelect = 8,     // client → server: client will attach trace context
};

const char* MessageTypeName(MessageType type);

inline constexpr std::uint32_t kFrameMagic = 0x544E4641u;  // "AFNT" (LE)
inline constexpr std::uint16_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 16;
// Upper bound on a payload; anything larger is a corrupt or hostile length
// field (the biggest legitimate payload is one model, well under this).
inline constexpr std::uint64_t kMaxFramePayload = 1ull << 30;

struct Frame {
  MessageType type = MessageType::kAck;
  std::vector<std::uint8_t> payload;
};

// Header + payload as one contiguous byte vector.
std::vector<std::uint8_t> EncodeFrame(const Frame& frame);

// Attempts to decode one frame from the start of `buffer`. Returns the
// number of bytes consumed (header + payload) and fills `out`, or returns 0
// when the buffer holds only a frame prefix. Throws util::CheckError on bad
// magic, unsupported version, unknown type, or an oversized length field.
std::size_t DecodeFrame(std::span<const std::uint8_t> buffer, Frame* out);

// --- Typed payloads ---------------------------------------------------
// Decoders validate the frame type and payload framing; truncated or
// trailing bytes throw util::CheckError.

// One training job: "train from these base params". `round` is the server
// round the job was dispatched in, `job_index` the per-client job counter
// that keys the client's deterministic RNG stream.
struct ModelBroadcastMsg {
  std::uint64_t round = 0;
  std::uint64_t job_index = 0;
  std::vector<float> params;
  // Cross-process trace context (0 = untraced → no AFTC block on the wire).
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
};

// The client's report for one job.
struct ClientUpdateMsg {
  std::int32_t client_id = -1;
  std::uint64_t job_index = 0;
  std::uint64_t base_round = 0;
  std::uint64_t num_samples = 0;
  std::vector<float> delta;
  // Cross-process trace context (0 = untraced → no AFTC block on the wire).
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
  // Decode-side only: frame payload size in bytes, filled by
  // DecodeClientUpdate so the server can audit per-update wire cost.
  // Ignored by the encoder.
  std::uint64_t wire_bytes = 0;
};

// Hello (value = client id, sent once after connecting) or update receipt
// (value = acknowledged job_index).
struct AckMsg {
  std::uint64_t value = 0;
};

// Codec names the server is willing to decode, preference-ordered.
struct CodecOfferMsg {
  std::vector<std::string> codecs;
};

// The codec the client will encode its updates with (and accepts on the
// downlink, subject to broadcast-safety).
struct CodecSelectMsg {
  std::string codec;
};

// Server → client: "I understand AFTC trace-context blocks." Empty payload.
struct TraceOfferMsg {};

// Client → server: whether the client will attach trace context to its
// updates (and accepts it on broadcasts).
struct TraceSelectMsg {
  bool enabled = false;
};

// Parameter-bearing encoders take an optional negotiated codec: nullptr (or
// the identity codec) emits the legacy raw AFPM block — byte-identical to
// the pre-codec wire — anything else emits an AFCZ container. The update
// encoder additionally threads the client's error-feedback state for codecs
// that use it. Decoders sniff the magic, so they need no codec argument.
Frame EncodeModelBroadcast(const ModelBroadcastMsg& msg,
                           const compress::Codec* codec = nullptr);
ModelBroadcastMsg DecodeModelBroadcast(const Frame& frame);

Frame EncodeClientUpdate(const ClientUpdateMsg& msg,
                         const compress::Codec* codec = nullptr,
                         compress::FeedbackState* feedback = nullptr);
ClientUpdateMsg DecodeClientUpdate(const Frame& frame);

Frame EncodeAck(const AckMsg& msg);
AckMsg DecodeAck(const Frame& frame);

Frame EncodeCodecOffer(const CodecOfferMsg& msg);
CodecOfferMsg DecodeCodecOffer(const Frame& frame);

Frame EncodeCodecSelect(const CodecSelectMsg& msg);
CodecSelectMsg DecodeCodecSelect(const Frame& frame);

Frame EncodeTraceOffer(const TraceOfferMsg& msg);
TraceOfferMsg DecodeTraceOffer(const Frame& frame);

Frame EncodeTraceSelect(const TraceSelectMsg& msg);
TraceSelectMsg DecodeTraceSelect(const Frame& frame);

Frame MakeShutdownFrame();

}  // namespace net

#include "net/session.h"

#include <limits>

#include "compress/codec.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/registry.h"

namespace net {

Session::Session(Host* host, Options options)
    : host_(host), options_(std::move(options)) {
  AF_CHECK(host_ != nullptr);
}

bool Session::HandleFrame(const FrameView& frame) {
  if (!identified()) {
    if (frame.type == MessageType::kAck) {
      return HandleHelloAck(frame);
    }
    if (frame.type == MessageType::kHello) {
      return HandleHello(frame);
    }
    AF_LOG(kWarn) << "net: connection sent " << MessageTypeName(frame.type)
                  << " before handshake; closing";
    return false;
  }
  if (!handshake_complete_) {
    return HandleNegotiation(frame);
  }
  switch (frame.type) {
    case MessageType::kClientUpdate:
      return HandleClientUpdate(frame);
    case MessageType::kAck:
      return true;  // stray receipt; harmless
    case MessageType::kShutdown:
      return false;  // client says goodbye
    case MessageType::kCodecSelect:
    case MessageType::kTraceSelect:
    case MessageType::kShmSelect:
      return true;  // repeated select after negotiation; harmless
    case MessageType::kHello:
      AF_LOG(kWarn) << "net: client " << primary_id()
                    << " sent a second hello; closing";
      return false;
    case MessageType::kModelBroadcast:
    case MessageType::kCodecOffer:
    case MessageType::kTraceOffer:
    case MessageType::kShmOffer:
      AF_LOG(kWarn) << "net: client " << primary_id()
                    << " sent a server-only frame; closing";
      return false;
  }
  return false;
}

bool Session::HandleHelloAck(const FrameView& frame) {
  const AckMsg hello = DecodeAck(frame);
  // client_id is int everywhere downstream; a value that truncates (or
  // lands on the <0 "no id yet" sentinel) would let one connection
  // register twice and leave a dangling binding on close.
  if (hello.value >
      static_cast<std::uint64_t>(std::numeric_limits<int>::max())) {
    AF_LOG(kWarn) << "net: handshake declared unrepresentable client id "
                  << hello.value << "; closing";
    return false;
  }
  const int client_id = static_cast<int>(hello.value);
  if (!host_->BindClient(client_id)) {
    return false;
  }
  client_ids_.push_back(client_id);
  owned_ids_.insert(client_id);
  BeginNegotiation();
  return true;
}

bool Session::HandleHello(const FrameView& frame) {
  const HelloMsg hello = DecodeHello(frame);
  if (hello.client_ids.empty()) {
    AF_LOG(kWarn) << "net: multiplexed hello with no client ids; closing";
    return false;
  }
  for (const std::int32_t id : hello.client_ids) {
    if (id < 0) {
      AF_LOG(kWarn) << "net: multiplexed hello declared negative client id "
                    << id << "; closing";
      return false;
    }
    // Bind incrementally so a mid-hello failure still leaves client_ids_
    // an accurate record of what the owner must unbind on close.
    if (!host_->BindClient(static_cast<int>(id))) {
      return false;
    }
    client_ids_.push_back(static_cast<int>(id));
    owned_ids_.insert(static_cast<int>(id));
  }
  multiplexed_ = true;
  BeginNegotiation();
  return true;
}

void Session::BeginNegotiation() {
  // Negotiation rounds: the handshake completes (and the host's connect
  // notification fires) only once every offered extension's select arrives,
  // so the driver never broadcasts before it knows the downlink codec or
  // whether the peer understands trace context.
  if (!options_.advertised_codecs.empty()) {
    host_->SendFrame(EncodeCodecOffer({options_.advertised_codecs}));
    awaiting_codec_select_ = true;
  }
  if (options_.offer_trace_context) {
    host_->SendFrame(EncodeTraceOffer({}));
    awaiting_trace_select_ = true;
  }
  // Shm rings are per-connection-pair: a multiplexed session carries too
  // many clients for one ring, so the offer is skipped and the connection
  // stays on its byte transport.
  if (options_.offer_shm && !multiplexed_) {
    const std::string name =
        host_->CreateShmSegment(primary_id(), options_.shm_ring_bytes);
    if (!name.empty()) {
      host_->SendFrame(EncodeShmOffer(
          {name, static_cast<std::uint64_t>(options_.shm_ring_bytes)}));
      awaiting_shm_select_ = true;
    }
  }
  MaybeCompleteHandshake();
}

bool Session::HandleNegotiation(const FrameView& frame) {
  // Negotiation in flight: only the selects we are waiting on are
  // acceptable (in any order).
  if (frame.type == MessageType::kCodecSelect && awaiting_codec_select_) {
    const CodecSelectMsg select = DecodeCodecSelect(frame);
    const std::string key = util::CanonicalName(select.codec);
    bool offered = key == "identity";
    for (const std::string& name : options_.advertised_codecs) {
      offered = offered || util::CanonicalName(name) == key;
    }
    if (!offered || !compress::Has(select.codec)) {
      AF_LOG(kWarn) << "net: client " << primary_id()
                    << " selected unavailable codec '" << select.codec
                    << "'; closing";
      return false;
    }
    const compress::Codec& codec = compress::Get(select.codec);
    codec_ = compress::IsIdentity(codec) ? nullptr : &codec;
    awaiting_codec_select_ = false;
    MaybeCompleteHandshake();
    return true;
  }
  if (frame.type == MessageType::kTraceSelect && awaiting_trace_select_) {
    trace_context_ = DecodeTraceSelect(frame).enabled;
    awaiting_trace_select_ = false;
    MaybeCompleteHandshake();
    return true;
  }
  if (frame.type == MessageType::kShmSelect && awaiting_shm_select_) {
    const bool enabled = DecodeShmSelect(frame).enabled;
    awaiting_shm_select_ = false;
    host_->SetShmActive(enabled);
    MaybeCompleteHandshake();
    return true;
  }
  AF_LOG(kWarn) << "net: client " << primary_id() << " sent "
                << MessageTypeName(frame.type)
                << " before negotiation finished; closing";
  return false;
}

bool Session::HandleClientUpdate(const FrameView& frame) {
  ClientUpdateMsg msg = DecodeClientUpdate(frame);
  if (!Owns(msg.client_id)) {
    AF_LOG(kWarn) << "net: session for client " << primary_id()
                  << " sent update claiming id " << msg.client_id
                  << "; closing";
    return false;
  }
  // Ack every copy so the sender stops retrying; deliver only the first.
  // Queue-only (no immediate flush): a flush failure here would destroy
  // the session while its owner is still feeding it frames.
  host_->SendFrame(EncodeAck({msg.job_index}));
  if (!delivered_.emplace(msg.client_id, msg.job_index).second) {
    host_->OnDuplicateUpdate(msg.client_id, msg.job_index);
    return true;
  }
  host_->OnUpdate(msg.client_id, std::move(msg));
  return true;
}

void Session::MaybeCompleteHandshake() {
  if (awaiting_codec_select_ || awaiting_trace_select_ ||
      awaiting_shm_select_) {
    return;
  }
  handshake_complete_ = true;
  host_->OnHandshakeComplete();
}

}  // namespace net

#include "net/fault_injector.h"

#include "util/rng.h"

namespace net {

FaultInjector::FaultInjector(const FaultConfig& config, int client_id)
    : config_(config) {
  // Per-client stream: mixing the id through SplitMix64 keeps neighbouring
  // client ids decorrelated.
  std::uint64_t state =
      config.seed ^ (0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(
                                                  client_id) + 1));
  rng_.seed(util::SplitMix64(state));

  if (config_.kill_fraction > 0.0) {
    std::uniform_real_distribution<double> uniform(0.0, 1.0);
    doomed_ = uniform(rng_) < config_.kill_fraction;
    std::uniform_int_distribution<std::uint64_t> frames(1, 5);
    kill_after_frame_ = frames(rng_);
  }
}

FaultInjector::Action FaultInjector::NextAction() {
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  if (config_.drop_prob > 0.0 && uniform(rng_) < config_.drop_prob) {
    return Action::kDrop;
  }
  if (config_.truncate_prob > 0.0 && uniform(rng_) < config_.truncate_prob) {
    return Action::kTruncate;
  }
  if (config_.duplicate_prob > 0.0 &&
      uniform(rng_) < config_.duplicate_prob) {
    return Action::kDuplicate;
  }
  if (config_.delay_prob > 0.0 && uniform(rng_) < config_.delay_prob) {
    return Action::kDelay;
  }
  return Action::kDeliver;
}

}  // namespace net

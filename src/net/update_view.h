// Reference-counted immutable float view — the update currency of the
// zero-copy hot path.
//
// A model update crosses the system as an UpdateView: a span of float32s
// plus a keepalive for whatever owns them. Three backing modes, all with
// identical read semantics:
//
//   owned     — the view adopted a std::vector<float> (moved in, no copy);
//               implicit conversions from vector/initializer_list keep
//               call sites that used to build vectors compiling unchanged.
//   arena     — the floats live in a util::Arena block; the keepalive is
//               the block's shared_ptr, so the block outlives the view.
//   borrowed  — a bare span with a caller-supplied (possibly empty)
//               keepalive; used by decoders aliasing a frame buffer, valid
//               only as long as that buffer (documented per API).
//
// This is a standalone header with no net/ link dependency — lower layers
// (compress, fl/types) may include it freely; it sits in namespace net
// because the wire is where views originate and where their lifetime rules
// are defined.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "util/arena.h"

namespace net {

class UpdateView {
 public:
  UpdateView() = default;

  // Borrowing: `values` must stay valid while `keepalive` (or the
  // underlying buffer, when keepalive is empty) lives.
  UpdateView(std::span<const float> values,
             std::shared_ptr<const void> keepalive)
      : values_(values), keepalive_(std::move(keepalive)) {}

  // Owning: adopts the vector by move — no copy, the view is self-contained.
  // Intentionally implicit: everything that used to produce a
  // std::vector<float> update still assigns straight into an UpdateView.
  UpdateView(std::vector<float> values) {
    auto owned = std::make_shared<std::vector<float>>(std::move(values));
    values_ = std::span<const float>(owned->data(), owned->size());
    keepalive_ = std::move(owned);
  }

  UpdateView(std::initializer_list<float> values)
      : UpdateView(std::vector<float>(values)) {}

  static UpdateView Own(std::vector<float> values) {
    return UpdateView(std::move(values));
  }

  // Copies `values` into `arena` (the one deliberate copy of the uplink
  // path) and returns a view kept alive by the arena block.
  static UpdateView CopyToArena(util::Arena& arena,
                                std::span<const float> values) {
    auto alloc = arena.AllocateSpan<float>(values.size());
    if (!values.empty()) {
      std::memcpy(alloc.data.data(), values.data(),
                  values.size() * sizeof(float));
    }
    return UpdateView(alloc.data, std::move(alloc.keepalive));
  }

  const float* data() const { return values_.data(); }
  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  float operator[](std::size_t i) const { return values_[i]; }
  const float* begin() const { return values_.data(); }
  const float* end() const { return values_.data() + values_.size(); }

  std::span<const float> values() const { return values_; }
  operator std::span<const float>() const { return values_; }

  // Materializes an independent vector (always copies).
  std::vector<float> ToVector() const {
    return std::vector<float>(values_.begin(), values_.end());
  }

  // Whether this view is self-contained (owns or keeps alive its floats)
  // rather than borrowing from an unmanaged buffer.
  bool has_keepalive() const { return keepalive_ != nullptr; }

  friend bool operator==(const UpdateView& a, const UpdateView& b) {
    return a.values_.size() == b.values_.size() &&
           std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  std::span<const float> values_;
  std::shared_ptr<const void> keepalive_;
};

}  // namespace net

// k-means clustering.
//
// AsyncFilter's attacker identification runs 3-means (and the Fig. 7
// ablation 2-means) over 1-D suspicious scores; FLDetector runs k-means with
// a gap statistic over 1-D per-client scores. Both paths share this module.
#pragma once

#include <cstddef>
#include <random>
#include <span>
#include <vector>

namespace cluster {

struct KMeansResult {
  std::vector<std::vector<double>> centroids;  // k × dim
  std::vector<std::size_t> assignment;         // per-point centroid index
  double inertia = 0.0;                        // sum of squared distances
  std::size_t iterations = 0;
};

struct KMeansOptions {
  std::size_t max_iterations = 100;
  std::size_t restarts = 4;  // best-of-n k-means++ restarts
};

// General N-D k-means (k-means++ init, Lloyd iterations). Requires
// points.size() >= 1; if k > #distinct points some clusters may be empty and
// are re-seeded on the farthest point.
KMeansResult KMeans(const std::vector<std::vector<double>>& points,
                    std::size_t k, std::mt19937_64& rng,
                    const KMeansOptions& options = {});

// Warm-started k-means: plain Lloyd iterations from caller-provided seed
// centroids — no k-means++ seeding, no restarts, no RNG draws. The streaming
// scorer reuses the previous round's centroids here so re-clustering after a
// buffer mutation converges in a couple of iterations instead of paying
// seeding + restarts every time. Deterministic: same points + same seed
// centroids → same result. Empty clusters are re-seeded on the farthest
// point, exactly as in KMeans.
KMeansResult KMeansFromCentroids(
    const std::vector<std::vector<double>>& points,
    std::vector<std::vector<double>> initial_centroids,
    std::size_t max_iterations = 100);

// 1-D convenience wrapper.
KMeansResult KMeans1D(std::span<const double> values, std::size_t k,
                      std::mt19937_64& rng, const KMeansOptions& options = {});

// Mean silhouette coefficient of a clustering (−1..1, higher = tighter);
// returns 0 when any cluster is empty or k < 2.
double Silhouette(const std::vector<std::vector<double>>& points,
                  const KMeansResult& clustering);

// Tibshirani gap statistic over 1-D values: picks k in [1, max_k] comparing
// log-inertia against uniform reference draws. FLDetector uses this to
// decide whether an attack is present (k = 1 vs k >= 2).
std::size_t GapStatisticK(std::span<const double> values, std::size_t max_k,
                          std::mt19937_64& rng,
                          std::size_t reference_draws = 10);

}  // namespace cluster

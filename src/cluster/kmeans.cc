#include "cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/trace.h"
#include "util/check.h"

namespace cluster {
namespace {

double SquaredDist(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

// k-means++ seeding.
std::vector<std::vector<double>> SeedCentroids(
    const std::vector<std::vector<double>>& points, std::size_t k,
    std::mt19937_64& rng) {
  std::vector<std::vector<double>> centroids;
  centroids.reserve(k);
  std::uniform_int_distribution<std::size_t> pick(0, points.size() - 1);
  centroids.push_back(points[pick(rng)]);
  std::vector<double> dist2(points.size());
  while (centroids.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (const auto& c : centroids) {
        best = std::min(best, SquaredDist(points[i], c));
      }
      dist2[i] = best;
      total += best;
    }
    if (total <= 0.0) {
      // All points coincide with existing centroids; duplicate one.
      centroids.push_back(points[pick(rng)]);
      continue;
    }
    std::uniform_real_distribution<double> uniform(0.0, total);
    double target = uniform(rng);
    std::size_t chosen = points.size() - 1;
    double acc = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      acc += dist2[i];
      if (acc >= target) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

// Lloyd iterations from the given seed centroids; shared by the k-means++
// restarts and the warm-started entry point (KMeansFromCentroids).
KMeansResult Lloyd(const std::vector<std::vector<double>>& points,
                   std::vector<std::vector<double>> seed_centroids,
                   std::size_t max_iterations) {
  const std::size_t dim = points.front().size();
  const std::size_t k = seed_centroids.size();
  KMeansResult result;
  result.centroids = std::move(seed_centroids);
  result.assignment.assign(points.size(), 0);

  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    AF_TRACE_SPAN("kmeans.iter");
    bool changed = false;
    // Assign.
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::size_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < k; ++c) {
        double d = SquaredDist(points[i], result.centroids[c]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        changed = true;
      }
    }
    // Update.
    std::vector<std::vector<double>> sums(k, std::vector<double>(dim, 0.0));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const std::size_t c = result.assignment[i];
      ++counts[c];
      for (std::size_t d = 0; d < dim; ++d) {
        sums[c][d] += points[i][d];
      }
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster on the point farthest from its centroid.
        std::size_t farthest = 0;
        double far_d = -1.0;
        for (std::size_t i = 0; i < points.size(); ++i) {
          double d = SquaredDist(points[i],
                                 result.centroids[result.assignment[i]]);
          if (d > far_d) {
            far_d = d;
            farthest = i;
          }
        }
        result.centroids[c] = points[farthest];
        changed = true;
        continue;
      }
      for (std::size_t d = 0; d < dim; ++d) {
        result.centroids[c][d] =
            sums[c][d] / static_cast<double>(counts[c]);
      }
    }
    result.iterations = iter + 1;
    if (!changed) {
      break;
    }
  }

  result.inertia = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    result.inertia += SquaredDist(points[i],
                                  result.centroids[result.assignment[i]]);
  }
  return result;
}

KMeansResult RunOnce(const std::vector<std::vector<double>>& points,
                     std::size_t k, std::mt19937_64& rng,
                     std::size_t max_iterations) {
  return Lloyd(points, SeedCentroids(points, k, rng), max_iterations);
}

}  // namespace

KMeansResult KMeans(const std::vector<std::vector<double>>& points,
                    std::size_t k, std::mt19937_64& rng,
                    const KMeansOptions& options) {
  AF_TRACE_SPAN("kmeans.run");
  AF_CHECK(!points.empty());
  AF_CHECK_GT(k, 0u);
  const std::size_t dim = points.front().size();
  for (const auto& p : points) {
    AF_CHECK_EQ(p.size(), dim);
  }

  KMeansResult best;
  best.inertia = std::numeric_limits<double>::infinity();
  const std::size_t restarts = std::max<std::size_t>(1, options.restarts);
  for (std::size_t r = 0; r < restarts; ++r) {
    KMeansResult candidate = RunOnce(points, k, rng, options.max_iterations);
    if (candidate.inertia < best.inertia) {
      best = std::move(candidate);
    }
  }
  return best;
}

KMeansResult KMeansFromCentroids(
    const std::vector<std::vector<double>>& points,
    std::vector<std::vector<double>> initial_centroids,
    std::size_t max_iterations) {
  AF_TRACE_SPAN("kmeans.warm");
  AF_CHECK(!points.empty());
  AF_CHECK(!initial_centroids.empty());
  const std::size_t dim = points.front().size();
  for (const auto& p : points) {
    AF_CHECK_EQ(p.size(), dim);
  }
  for (const auto& c : initial_centroids) {
    AF_CHECK_EQ(c.size(), dim);
  }
  return Lloyd(points, std::move(initial_centroids), max_iterations);
}

KMeansResult KMeans1D(std::span<const double> values, std::size_t k,
                      std::mt19937_64& rng, const KMeansOptions& options) {
  std::vector<std::vector<double>> points;
  points.reserve(values.size());
  for (double v : values) {
    points.push_back({v});
  }
  return KMeans(points, k, rng, options);
}

double Silhouette(const std::vector<std::vector<double>>& points,
                  const KMeansResult& clustering) {
  const std::size_t k = clustering.centroids.size();
  if (k < 2 || points.size() < 2) {
    return 0.0;
  }
  std::vector<std::size_t> counts(k, 0);
  for (std::size_t c : clustering.assignment) {
    ++counts[c];
  }
  for (std::size_t c = 0; c < k; ++c) {
    if (counts[c] == 0) {
      return 0.0;
    }
  }

  double total = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    std::vector<double> mean_dist(k, 0.0);
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (i == j) {
        continue;
      }
      mean_dist[clustering.assignment[j]] +=
          std::sqrt(SquaredDist(points[i], points[j]));
    }
    const std::size_t own = clustering.assignment[i];
    double a = counts[own] > 1
                   ? mean_dist[own] / static_cast<double>(counts[own] - 1)
                   : 0.0;
    double b = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < k; ++c) {
      if (c == own) {
        continue;
      }
      b = std::min(b, mean_dist[c] / static_cast<double>(counts[c]));
    }
    double denom = std::max(a, b);
    total += denom > 0.0 ? (b - a) / denom : 0.0;
  }
  return total / static_cast<double>(points.size());
}

std::size_t GapStatisticK(std::span<const double> values, std::size_t max_k,
                          std::mt19937_64& rng,
                          std::size_t reference_draws) {
  AF_CHECK(!values.empty());
  AF_CHECK_GE(max_k, 1u);
  const auto [lo_it, hi_it] = std::minmax_element(values.begin(), values.end());
  const double lo = *lo_it, hi = *hi_it;
  if (hi - lo <= 1e-12) {
    return 1;  // degenerate: all scores identical
  }

  auto log_inertia = [&](std::span<const double> vals, std::size_t k) {
    KMeansResult r = KMeans1D(vals, k, rng);
    return std::log(std::max(r.inertia, 1e-12));
  };

  std::vector<double> gaps(max_k + 1, 0.0);
  std::vector<double> sks(max_k + 1, 0.0);
  std::uniform_real_distribution<double> uniform(lo, hi);
  for (std::size_t k = 1; k <= max_k; ++k) {
    const double observed = log_inertia(values, k);
    std::vector<double> reference_logs(reference_draws);
    std::vector<double> ref(values.size());
    for (std::size_t b = 0; b < reference_draws; ++b) {
      for (double& v : ref) {
        v = uniform(rng);
      }
      reference_logs[b] = log_inertia(ref, k);
    }
    double ref_mean = 0.0;
    for (double r : reference_logs) {
      ref_mean += r;
    }
    ref_mean /= static_cast<double>(reference_draws);
    double ref_var = 0.0;
    for (double r : reference_logs) {
      ref_var += (r - ref_mean) * (r - ref_mean);
    }
    ref_var /= static_cast<double>(reference_draws);
    gaps[k] = ref_mean - observed;
    sks[k] = std::sqrt(ref_var * (1.0 + 1.0 / static_cast<double>(
                                            reference_draws)));
  }
  // Standard rule: smallest k with gap(k) >= gap(k+1) - s(k+1).
  for (std::size_t k = 1; k < max_k; ++k) {
    if (gaps[k] >= gaps[k + 1] - sks[k + 1]) {
      return k;
    }
  }
  return max_k;
}

}  // namespace cluster

#include "cluster/tsne.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace cluster {
namespace {

// Pairwise squared Euclidean distances (N×N, row-major).
std::vector<double> PairwiseSquared(
    const std::vector<std::vector<float>>& points) {
  const std::size_t n = points.size();
  std::vector<double> d2(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < points[i].size(); ++k) {
        double d = static_cast<double>(points[i][k]) - points[j][k];
        sum += d * d;
      }
      d2[i * n + j] = sum;
      d2[j * n + i] = sum;
    }
  }
  return d2;
}

// Binary-searches the Gaussian bandwidth for row i so the conditional
// distribution's perplexity matches the target; fills p_cond row i.
void FitRowPerplexity(const std::vector<double>& d2, std::size_t n,
                      std::size_t i, double perplexity,
                      std::vector<double>& p_cond) {
  const double target_entropy = std::log(perplexity);
  double beta = 1.0, beta_min = 0.0;
  double beta_max = std::numeric_limits<double>::infinity();
  std::vector<double> row(n, 0.0);
  for (int iter = 0; iter < 50; ++iter) {
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      row[j] = (j == i) ? 0.0 : std::exp(-beta * d2[i * n + j]);
      sum += row[j];
    }
    if (sum <= 0.0) {
      sum = 1e-12;
    }
    double entropy = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (row[j] > 0.0) {
        double p = row[j] / sum;
        entropy -= p * std::log(p);
      }
    }
    double diff = entropy - target_entropy;
    if (std::abs(diff) < 1e-5) {
      break;
    }
    if (diff > 0.0) {
      beta_min = beta;
      beta = std::isinf(beta_max) ? beta * 2.0 : 0.5 * (beta + beta_max);
    } else {
      beta_max = beta;
      beta = 0.5 * (beta + beta_min);
    }
  }
  double sum = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    row[j] = (j == i) ? 0.0 : std::exp(-beta * d2[i * n + j]);
    sum += row[j];
  }
  if (sum <= 0.0) {
    sum = 1e-12;
  }
  for (std::size_t j = 0; j < n; ++j) {
    p_cond[i * n + j] = row[j] / sum;
  }
}

}  // namespace

std::vector<std::array<double, 2>> TsneEmbed(
    const std::vector<std::vector<float>>& points, std::mt19937_64& rng,
    const TsneOptions& options) {
  AF_CHECK_GE(points.size(), 2u);
  const std::size_t n = points.size();
  const std::size_t dim = points.front().size();
  for (const auto& p : points) {
    AF_CHECK_EQ(p.size(), dim);
  }
  // Perplexity must be < n; clamp for small studies.
  const double perplexity =
      std::min(options.perplexity, static_cast<double>(n - 1) / 3.0);

  std::vector<double> d2 = PairwiseSquared(points);
  std::vector<double> p_cond(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    FitRowPerplexity(d2, n, i, std::max(perplexity, 2.0), p_cond);
  }
  // Symmetrise: p_ij = (p_{j|i} + p_{i|j}) / 2n, floored for stability.
  std::vector<double> p(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      p[i * n + j] = std::max(
          (p_cond[i * n + j] + p_cond[j * n + i]) / (2.0 * static_cast<double>(n)),
          1e-12);
    }
  }

  std::normal_distribution<double> init(0.0, 1e-4);
  std::vector<std::array<double, 2>> y(n), y_vel(n, {0.0, 0.0});
  for (auto& yi : y) {
    yi = {init(rng), init(rng)};
  }

  const std::size_t exaggeration_end = options.iterations / 4;
  std::vector<double> q(n * n, 0.0);
  std::vector<std::array<double, 2>> grad(n);
  for (std::size_t iter = 0; iter < options.iterations; ++iter) {
    const double exaggeration =
        iter < exaggeration_end ? options.early_exaggeration : 1.0;
    const double momentum = iter < exaggeration_end
                                ? options.initial_momentum
                                : options.final_momentum;
    // Student-t affinities in the embedding.
    double q_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        double dx = y[i][0] - y[j][0];
        double dy = y[i][1] - y[j][1];
        double w = 1.0 / (1.0 + dx * dx + dy * dy);
        q[i * n + j] = w;
        q[j * n + i] = w;
        q_sum += 2.0 * w;
      }
    }
    q_sum = std::max(q_sum, 1e-12);

    for (auto& g : grad) {
      g = {0.0, 0.0};
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) {
          continue;
        }
        double w = q[i * n + j];
        double q_ij = std::max(w / q_sum, 1e-12);
        double mult = 4.0 * (exaggeration * p[i * n + j] - q_ij) * w;
        grad[i][0] += mult * (y[i][0] - y[j][0]);
        grad[i][1] += mult * (y[i][1] - y[j][1]);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (int d = 0; d < 2; ++d) {
        y_vel[i][d] =
            momentum * y_vel[i][d] - options.learning_rate * grad[i][d];
        y[i][d] += y_vel[i][d];
      }
    }
    // Re-centre to remove drift.
    double cx = 0.0, cy = 0.0;
    for (const auto& yi : y) {
      cx += yi[0];
      cy += yi[1];
    }
    cx /= static_cast<double>(n);
    cy /= static_cast<double>(n);
    for (auto& yi : y) {
      yi[0] -= cx;
      yi[1] -= cy;
    }
  }
  return y;
}

}  // namespace cluster

// Exact t-SNE (van der Maaten & Hinton, 2008).
//
// Used to regenerate the paper's Fig. 3 / Fig. 4 observation study: embed
// per-round local updates into 2-D and show that same-staleness updates
// cluster around a common centre. Exact O(N²) gradients are fine at the
// study's scale (≤ a few hundred updates per round).
#pragma once

#include <array>
#include <cstddef>
#include <random>
#include <vector>

namespace cluster {

struct TsneOptions {
  double perplexity = 20.0;
  std::size_t iterations = 400;
  double learning_rate = 100.0;
  double early_exaggeration = 4.0;       // applied for the first quarter
  double initial_momentum = 0.5;
  double final_momentum = 0.8;
};

// Embeds `points` (N × D, rows = samples) into N × 2. Deterministic given
// the RNG state.
std::vector<std::array<double, 2>> TsneEmbed(
    const std::vector<std::vector<float>>& points, std::mt19937_64& rng,
    const TsneOptions& options = {});

}  // namespace cluster

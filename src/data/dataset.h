// In-memory labelled dataset plus batch assembly.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace data {

// A dataset stores every sample contiguously; `sample_shape` describes one
// sample (e.g. {1, 12, 12}) and batches are materialised on demand.
struct Dataset {
  tensor::Shape sample_shape;
  std::size_t num_classes = 0;
  std::vector<float> features;       // size = N * NumElements(sample_shape)
  std::vector<std::int64_t> labels;  // size = N

  std::size_t size() const { return labels.size(); }
  std::size_t sample_dim() const { return tensor::NumElements(sample_shape); }

  // Copies one sample's features.
  std::span<const float> Sample(std::size_t index) const;
};

struct Batch {
  tensor::Tensor features;            // shape = {B, sample_shape...}
  std::vector<std::int64_t> labels;   // size B
};

// Materialises the batch selected by `indices` (into `dataset`).
Batch MakeBatch(const Dataset& dataset, std::span<const std::size_t> indices);

// Splits [0, n) into shuffled mini-batch index lists of size `batch_size`
// (last batch may be smaller).
std::vector<std::vector<std::size_t>> MakeMiniBatches(std::size_t n,
                                                      std::size_t batch_size,
                                                      std::mt19937_64& rng);

// Per-class sample counts; length = num_classes.
std::vector<std::size_t> LabelHistogram(const Dataset& dataset,
                                        std::span<const std::size_t> indices);

}  // namespace data

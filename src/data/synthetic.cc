#include "data/synthetic.h"

#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace data {
namespace {

// One 1-2-1 smoothing pass along rows and columns of each channel, in place.
// Adds the spatial correlation that makes conv layers meaningfully better
// than a flat MLP on the image profiles.
void SmoothImage(std::span<float> image, const tensor::Shape& shape) {
  AF_CHECK_EQ(shape.size(), 3u);
  const std::size_t channels = shape[0], h = shape[1], w = shape[2];
  std::vector<float> tmp(h * w);
  for (std::size_t c = 0; c < channels; ++c) {
    float* plane = image.data() + c * h * w;
    // Horizontal pass.
    for (std::size_t i = 0; i < h; ++i) {
      for (std::size_t j = 0; j < w; ++j) {
        float left = j > 0 ? plane[i * w + j - 1] : plane[i * w + j];
        float right = j + 1 < w ? plane[i * w + j + 1] : plane[i * w + j];
        tmp[i * w + j] = 0.25f * left + 0.5f * plane[i * w + j] + 0.25f * right;
      }
    }
    // Vertical pass.
    for (std::size_t i = 0; i < h; ++i) {
      for (std::size_t j = 0; j < w; ++j) {
        float up = i > 0 ? tmp[(i - 1) * w + j] : tmp[i * w + j];
        float down = i + 1 < h ? tmp[(i + 1) * w + j] : tmp[i * w + j];
        plane[i * w + j] = 0.25f * up + 0.5f * tmp[i * w + j] + 0.25f * down;
      }
    }
  }
}

}  // namespace

SyntheticSpec MakeProfileSpec(Profile profile, std::size_t side) {
  SyntheticSpec spec;
  switch (profile) {
    case Profile::kMnist:
      // Easy, well-separated single-mode classes: clean accuracy ≫ 90%.
      spec.name = "mnist-like";
      spec.sample_shape = {1, side, side};
      spec.class_separation = 2.2;
      spec.modes_per_class = 1;
      spec.noise_std = 1.0;
      spec.label_noise = 0.0;
      spec.smoothing = 1.0;
      break;
    case Profile::kFashionMnist:
      // Overlapping classes with two modes each (shirt vs pullover style
      // confusions): clean accuracy in the mid-80s regime.
      spec.name = "fashionmnist-like";
      spec.sample_shape = {1, side, side};
      spec.class_separation = 1.70;
      spec.modes_per_class = 2;
      spec.noise_std = 1.0;
      spec.label_noise = 0.03;
      spec.smoothing = 1.0;
      break;
    case Profile::kCifar10:
      // Colour images, three modes per class, heavier noise.
      spec.name = "cifar10-like";
      spec.sample_shape = {3, side, side};
      spec.class_separation = 2.0;
      spec.modes_per_class = 3;
      spec.noise_std = 1.0;
      spec.label_noise = 0.05;
      spec.smoothing = 1.0;
      break;
    case Profile::kCinic10:
      // Hardest profile (CINIC mixes CIFAR with ImageNet-derived images):
      // many modes, strong noise and label noise keep clean accuracy low.
      spec.name = "cinic10-like";
      spec.sample_shape = {3, side, side};
      spec.class_separation = 1.40;
      spec.modes_per_class = 4;
      spec.noise_std = 1.2;
      spec.label_noise = 0.12;
      spec.smoothing = 1.0;
      break;
  }
  return spec;
}

const char* ProfileName(Profile profile) {
  switch (profile) {
    case Profile::kMnist:
      return "MNIST";
    case Profile::kFashionMnist:
      return "FashionMNIST";
    case Profile::kCifar10:
      return "CIFAR-10";
    case Profile::kCinic10:
      return "CINIC-10";
  }
  return "?";
}

SyntheticGenerator::SyntheticGenerator(SyntheticSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), seed_(seed) {
  AF_CHECK_GT(spec_.num_classes, 0u);
  AF_CHECK_GT(spec_.modes_per_class, 0u);
  AF_CHECK_GT(spec_.class_separation, 0.0);
  const std::size_t dim = tensor::NumElements(spec_.sample_shape);
  AF_CHECK_GT(dim, 0u);

  util::RngFactory rngs(seed_);
  auto rng = rngs.Stream("synthetic/prototypes");
  std::normal_distribution<float> unit(0.0f, 1.0f);
  prototypes_.resize(spec_.num_classes * spec_.modes_per_class);
  for (std::size_t c = 0; c < spec_.num_classes; ++c) {
    // A class centre plus per-mode offsets: modes of one class stay closer
    // to each other than to other classes.
    std::vector<float> centre(dim);
    for (float& x : centre) {
      x = unit(rng) * static_cast<float>(spec_.class_separation);
    }
    for (std::size_t m = 0; m < spec_.modes_per_class; ++m) {
      std::vector<float> proto = centre;
      if (spec_.modes_per_class > 1) {
        for (float& x : proto) {
          x += unit(rng) * static_cast<float>(spec_.class_separation) * 0.45f;
        }
      }
      prototypes_[c * spec_.modes_per_class + m] = std::move(proto);
    }
  }
}

Dataset SyntheticGenerator::Generate(std::size_t n,
                                     const std::string& stream) const {
  const std::size_t dim = tensor::NumElements(spec_.sample_shape);
  Dataset dataset;
  dataset.sample_shape = spec_.sample_shape;
  dataset.num_classes = spec_.num_classes;
  dataset.features.resize(n * dim);
  dataset.labels.resize(n);

  util::RngFactory rngs(seed_);
  auto rng = rngs.Stream("synthetic/samples/" + stream);
  std::uniform_int_distribution<std::size_t> pick_class(0,
                                                        spec_.num_classes - 1);
  std::uniform_int_distribution<std::size_t> pick_mode(
      0, spec_.modes_per_class - 1);
  std::normal_distribution<float> noise(0.0f,
                                        static_cast<float>(spec_.noise_std));
  std::uniform_real_distribution<double> uniform(0.0, 1.0);

  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t label = pick_class(rng);
    const std::size_t mode = pick_mode(rng);
    const auto& proto = prototypes_[label * spec_.modes_per_class + mode];
    float* sample = dataset.features.data() + i * dim;
    for (std::size_t d = 0; d < dim; ++d) {
      sample[d] = proto[d] + noise(rng);
    }
    if (spec_.smoothing > 0.0 && spec_.sample_shape.size() == 3) {
      for (int pass = 0; pass < static_cast<int>(spec_.smoothing); ++pass) {
        SmoothImage(std::span<float>(sample, dim), spec_.sample_shape);
      }
    }
    std::int64_t final_label = static_cast<std::int64_t>(label);
    if (spec_.label_noise > 0.0 && uniform(rng) < spec_.label_noise) {
      final_label = static_cast<std::int64_t>(pick_class(rng));
    }
    dataset.labels[i] = final_label;
  }
  return dataset;
}

}  // namespace data

#include "data/partition.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "stats/dirichlet.h"
#include "util/check.h"

namespace data {
namespace {

// Per-label shuffled index pools with cycling.
class LabelPools {
 public:
  LabelPools(const Dataset& dataset, std::mt19937_64& rng)
      : pools_(dataset.num_classes), cursors_(dataset.num_classes, 0) {
    for (std::size_t i = 0; i < dataset.size(); ++i) {
      pools_[static_cast<std::size_t>(dataset.labels[i])].push_back(i);
    }
    for (auto& pool : pools_) {
      std::shuffle(pool.begin(), pool.end(), rng);
    }
  }

  bool LabelHasSamples(std::size_t label) const {
    return !pools_[label].empty();
  }

  std::size_t Take(std::size_t label) {
    auto& pool = pools_[label];
    AF_CHECK(!pool.empty());
    std::size_t idx = pool[cursors_[label] % pool.size()];
    ++cursors_[label];
    return idx;
  }

 private:
  std::vector<std::vector<std::size_t>> pools_;
  std::vector<std::size_t> cursors_;
};

}  // namespace

Partition DirichletPartition(const Dataset& dataset, std::size_t num_clients,
                             std::size_t partition_size, double alpha,
                             std::mt19937_64& rng) {
  AF_CHECK_GT(num_clients, 0u);
  AF_CHECK_GT(partition_size, 0u);
  AF_CHECK_GT(dataset.size(), 0u);
  LabelPools pools(dataset, rng);

  Partition partition(num_clients);
  for (std::size_t c = 0; c < num_clients; ++c) {
    std::vector<double> mixture =
        stats::SampleSymmetricDirichlet(dataset.num_classes, alpha, rng);
    // Zero out labels absent from the dataset and renormalise.
    double total = 0.0;
    for (std::size_t l = 0; l < mixture.size(); ++l) {
      if (!pools.LabelHasSamples(l)) {
        mixture[l] = 0.0;
      }
      total += mixture[l];
    }
    AF_CHECK_GT(total, 0.0) << "dataset has no samples for any label";
    std::discrete_distribution<std::size_t> pick_label(mixture.begin(),
                                                       mixture.end());
    partition[c].reserve(partition_size);
    for (std::size_t s = 0; s < partition_size; ++s) {
      partition[c].push_back(pools.Take(pick_label(rng)));
    }
  }
  return partition;
}

Partition IidPartition(const Dataset& dataset, std::size_t num_clients,
                       std::size_t partition_size, std::mt19937_64& rng) {
  AF_CHECK_GT(num_clients, 0u);
  AF_CHECK_GT(dataset.size(), 0u);
  std::uniform_int_distribution<std::size_t> pick(0, dataset.size() - 1);
  Partition partition(num_clients);
  for (auto& client : partition) {
    client.reserve(partition_size);
    for (std::size_t s = 0; s < partition_size; ++s) {
      client.push_back(pick(rng));
    }
  }
  return partition;
}

double MeanLabelSkew(const Dataset& dataset, const Partition& partition) {
  AF_CHECK(!partition.empty());
  std::vector<double> global(dataset.num_classes, 0.0);
  for (std::int64_t label : dataset.labels) {
    global[static_cast<std::size_t>(label)] += 1.0;
  }
  for (double& g : global) {
    g /= static_cast<double>(dataset.size());
  }

  double total_tv = 0.0;
  for (const auto& client : partition) {
    std::vector<std::size_t> hist = LabelHistogram(dataset, client);
    double tv = 0.0;
    for (std::size_t l = 0; l < hist.size(); ++l) {
      double p = client.empty()
                     ? 0.0
                     : static_cast<double>(hist[l]) /
                           static_cast<double>(client.size());
      tv += std::abs(p - global[l]);
    }
    total_tv += 0.5 * tv;
  }
  return total_tv / static_cast<double>(partition.size());
}

}  // namespace data

#include "data/dataset.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace data {

std::span<const float> Dataset::Sample(std::size_t index) const {
  AF_CHECK_LT(index, size());
  const std::size_t dim = sample_dim();
  return std::span<const float>(features.data() + index * dim, dim);
}

Batch MakeBatch(const Dataset& dataset, std::span<const std::size_t> indices) {
  AF_CHECK(!indices.empty());
  const std::size_t dim = dataset.sample_dim();
  tensor::Shape batch_shape;
  batch_shape.push_back(indices.size());
  for (std::size_t d : dataset.sample_shape) {
    batch_shape.push_back(d);
  }
  Batch batch{tensor::Tensor(batch_shape), {}};
  batch.labels.reserve(indices.size());
  float* dst = batch.features.data().data();
  for (std::size_t k = 0; k < indices.size(); ++k) {
    std::span<const float> sample = dataset.Sample(indices[k]);
    std::copy(sample.begin(), sample.end(), dst + k * dim);
    batch.labels.push_back(dataset.labels[indices[k]]);
  }
  return batch;
}

std::vector<std::vector<std::size_t>> MakeMiniBatches(std::size_t n,
                                                      std::size_t batch_size,
                                                      std::mt19937_64& rng) {
  AF_CHECK_GT(batch_size, 0u);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::shuffle(order.begin(), order.end(), rng);
  std::vector<std::vector<std::size_t>> batches;
  for (std::size_t start = 0; start < n; start += batch_size) {
    const std::size_t end = std::min(start + batch_size, n);
    batches.emplace_back(order.begin() + start, order.begin() + end);
  }
  return batches;
}

std::vector<std::size_t> LabelHistogram(const Dataset& dataset,
                                        std::span<const std::size_t> indices) {
  std::vector<std::size_t> hist(dataset.num_classes, 0);
  for (std::size_t idx : indices) {
    AF_CHECK_LT(idx, dataset.size());
    hist[static_cast<std::size_t>(dataset.labels[idx])]++;
  }
  return hist;
}

}  // namespace data

// Synthetic stand-ins for MNIST / FashionMNIST / CIFAR-10 / CINIC-10.
//
// None of the real datasets are available offline, so each is replaced by a
// class-conditional Gaussian-mixture generator whose difficulty profile
// (class separation, modes per class, noise, label noise) is tuned so the
// *relative* behaviour matches the paper: clean-accuracy ordering
// MNIST ≫ Fashion > CIFAR > CINIC, and the same attack sensitivities.
// See DESIGN.md §1 for the substitution rationale.
#pragma once

#include <cstdint>
#include <string>

#include "data/dataset.h"

namespace data {

// Difficulty profile of one synthetic dataset family.
struct SyntheticSpec {
  std::string name;
  tensor::Shape sample_shape;      // e.g. {1, 12, 12}
  std::size_t num_classes = 10;
  double class_separation = 2.5;   // prototype scale vs unit noise
  std::size_t modes_per_class = 1; // sub-modes within each class
  double noise_std = 1.0;          // per-dimension sample noise
  double label_noise = 0.0;        // fraction of uniformly relabelled samples
  double smoothing = 0.0;          // spatial 1-2-1 smoothing passes (images)
};

// The four evaluation profiles (paper §5.1).
enum class Profile { kMnist, kFashionMnist, kCifar10, kCinic10 };

// Returns the tuned spec for a profile. `side` controls image resolution
// (default 12 keeps the surrogate models CPU-fast).
SyntheticSpec MakeProfileSpec(Profile profile, std::size_t side = 12);

const char* ProfileName(Profile profile);

// Deterministic generator: the class/mode prototypes are fixed by
// (spec, seed) at construction, so train and test draws — and every client's
// partition — come from the same underlying distribution.
class SyntheticGenerator {
 public:
  SyntheticGenerator(SyntheticSpec spec, std::uint64_t seed);

  // Draws `n` fresh samples; `stream` disambiguates independent draws
  // (e.g. "train" vs "test").
  Dataset Generate(std::size_t n, const std::string& stream) const;

  const SyntheticSpec& spec() const { return spec_; }

 private:
  SyntheticSpec spec_;
  std::uint64_t seed_;
  // prototypes_[class * modes + mode] is one prototype vector.
  std::vector<std::vector<float>> prototypes_;
};

}  // namespace data

// Dirichlet non-IID partitioning of a centralized dataset across clients
// (paper §5.1: concentration α = 0.1 default; 0.05 / 0.01 in the
// heterogeneity studies; per-client partition sizes from Table 1).
#pragma once

#include <random>
#include <vector>

#include "data/dataset.h"

namespace data {

// indices[i] is the list of dataset indices assigned to client i.
using Partition = std::vector<std::vector<std::size_t>>;

// Assigns `partition_size` samples to each of `num_clients`:
// the client's label mixture is drawn from Dirichlet(alpha) and samples are
// taken from per-label pools (cycling when a pool is exhausted, mirroring
// PLATO's with-replacement sampler).
Partition DirichletPartition(const Dataset& dataset, std::size_t num_clients,
                             std::size_t partition_size, double alpha,
                             std::mt19937_64& rng);

// IID control used in the Fig. 3 observation study: uniform sampling without
// regard to labels.
Partition IidPartition(const Dataset& dataset, std::size_t num_clients,
                       std::size_t partition_size, std::mt19937_64& rng);

// Heterogeneity diagnostic: mean total-variation distance between each
// client's label histogram and the global label distribution (0 = IID).
double MeanLabelSkew(const Dataset& dataset, const Partition& partition);

}  // namespace data

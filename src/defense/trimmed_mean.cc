#include "defense/trimmed_mean.h"

#include <algorithm>

#include "util/check.h"

namespace defense {
namespace {

AggregationResult AllAccepted(const std::vector<fl::ModelUpdate>& updates,
                              std::vector<float> aggregate) {
  AggregationResult result;
  result.verdicts.assign(updates.size(), Verdict::kAccepted);
  result.aggregated_delta = std::move(aggregate);
  return result;
}

}  // namespace

TrimmedMean::TrimmedMean(double beta) : beta_(beta) {
  AF_CHECK_GE(beta, 0.0);
  AF_CHECK_LT(beta, 0.5);
}

AggregationResult TrimmedMean::Process(
    const FilterContext& /*context*/,
    const std::vector<fl::ModelUpdate>& updates) {
  AF_CHECK(!updates.empty());
  const std::size_t n = updates.size();
  const std::size_t dim = updates.front().delta.size();
  const std::size_t trim = static_cast<std::size_t>(beta_ * static_cast<double>(n));
  AF_CHECK_LT(2 * trim, n) << "trim fraction removes every value";

  std::vector<float> aggregate(dim, 0.0f);
  std::vector<float> column(n);
  for (std::size_t d = 0; d < dim; ++d) {
    for (std::size_t i = 0; i < n; ++i) {
      column[i] = updates[i].delta[d];
    }
    std::sort(column.begin(), column.end());
    double sum = 0.0;
    for (std::size_t i = trim; i < n - trim; ++i) {
      sum += column[i];
    }
    aggregate[d] = static_cast<float>(sum / static_cast<double>(n - 2 * trim));
  }
  return AllAccepted(updates, std::move(aggregate));
}

AggregationResult CoordinateMedian::Process(
    const FilterContext& /*context*/,
    const std::vector<fl::ModelUpdate>& updates) {
  AF_CHECK(!updates.empty());
  const std::size_t n = updates.size();
  const std::size_t dim = updates.front().delta.size();
  std::vector<float> aggregate(dim, 0.0f);
  std::vector<float> column(n);
  for (std::size_t d = 0; d < dim; ++d) {
    for (std::size_t i = 0; i < n; ++i) {
      column[i] = updates[i].delta[d];
    }
    std::nth_element(column.begin(), column.begin() + n / 2, column.end());
    float median = column[n / 2];
    if (n % 2 == 0) {
      float lower = *std::max_element(column.begin(), column.begin() + n / 2);
      median = 0.5f * (median + lower);
    }
    aggregate[d] = median;
  }
  return AllAccepted(updates, std::move(aggregate));
}

}  // namespace defense

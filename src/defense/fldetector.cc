#include "defense/fldetector.h"

#include <algorithm>
#include <cmath>

#include "cluster/kmeans.h"
#include "stats/vec_ops.h"
#include "util/check.h"

namespace defense {

FlDetector::FlDetector(FlDetectorOptions options) : options_(options) {
  AF_CHECK_GT(options_.lbfgs_window, 0u);
  AF_CHECK_GT(options_.score_window, 0u);
}

void FlDetector::Reset() {
  pairs_.clear();
  global_snapshots_.clear();
  prev_global_.clear();
  prev_mean_update_.clear();
  has_prev_ = false;
  clients_.clear();
}

void FlDetector::SaveState(util::serial::Writer& w) const {
  w.U64(pairs_.size());
  for (const auto& [s, y] : pairs_) {
    w.FloatVec(s);
    w.FloatVec(y);
  }
  std::vector<std::size_t> snapshot_rounds;
  snapshot_rounds.reserve(global_snapshots_.size());
  for (const auto& [round, model] : global_snapshots_) {
    snapshot_rounds.push_back(round);
  }
  std::sort(snapshot_rounds.begin(), snapshot_rounds.end());
  w.U64(snapshot_rounds.size());
  for (std::size_t round : snapshot_rounds) {
    w.U64(round);
    w.FloatVec(global_snapshots_.at(round));
  }
  w.FloatVec(prev_global_);
  w.FloatVec(prev_mean_update_);
  w.U8(has_prev_ ? 1 : 0);
  std::vector<int> client_ids;
  client_ids.reserve(clients_.size());
  for (const auto& [id, history] : clients_) {
    client_ids.push_back(id);
  }
  std::sort(client_ids.begin(), client_ids.end());
  w.U64(client_ids.size());
  for (int id : client_ids) {
    const ClientHistory& history = clients_.at(id);
    w.I64(id);
    w.FloatVec(history.last_update);
    w.U64(history.last_base_round);
    w.U64(history.scores.size());
    for (double score : history.scores) {
      w.F64(score);
    }
  }
}

void FlDetector::LoadState(util::serial::Reader& r) {
  Reset();
  const std::uint64_t num_pairs = r.U64();
  for (std::uint64_t i = 0; i < num_pairs; ++i) {
    auto s = r.FloatVec();
    auto y = r.FloatVec();
    pairs_.emplace_back(std::move(s), std::move(y));
  }
  const std::uint64_t num_snapshots = r.U64();
  for (std::uint64_t i = 0; i < num_snapshots; ++i) {
    const std::size_t round = r.U64();
    global_snapshots_[round] = r.FloatVec();
  }
  prev_global_ = r.FloatVec();
  prev_mean_update_ = r.FloatVec();
  has_prev_ = r.U8() != 0;
  const std::uint64_t num_clients = r.U64();
  for (std::uint64_t i = 0; i < num_clients; ++i) {
    const int id = static_cast<int>(r.I64());
    ClientHistory& history = clients_[id];
    history.last_update = r.FloatVec();
    history.last_base_round = r.U64();
    const std::uint64_t num_scores = r.U64();
    for (std::uint64_t j = 0; j < num_scores; ++j) {
      history.scores.push_back(r.F64());
    }
  }
}

std::vector<float> FlDetector::HessianVector(const std::vector<float>& v) const {
  // Two-loop recursion with (s, y) swapped approximates the Hessian B ≈ H
  // rather than its inverse.
  std::vector<float> q = v;
  if (pairs_.empty()) {
    return q;
  }
  std::vector<double> alpha(pairs_.size(), 0.0);
  std::vector<double> rho(pairs_.size(), 0.0);
  // Backward pass (newest first).
  for (std::size_t k = pairs_.size(); k-- > 0;) {
    const auto& [s, y] = pairs_[k];
    double ys = stats::Dot(y, s);
    if (std::abs(ys) < 1e-12) {
      rho[k] = 0.0;
      continue;
    }
    rho[k] = 1.0 / ys;
    alpha[k] = rho[k] * stats::Dot(y, q);
    stats::Axpy(-alpha[k], s, q);
  }
  // Initial scaling: gamma = (y·s)/(s·s) of the newest pair → q *= gamma.
  const auto& [s_new, y_new] = pairs_.back();
  double ss = stats::Dot(s_new, s_new);
  double gamma = ss > 1e-12 ? stats::Dot(y_new, s_new) / ss : 1.0;
  stats::Scale(q, gamma);
  // Forward pass (oldest first).
  for (std::size_t k = 0; k < pairs_.size(); ++k) {
    if (rho[k] == 0.0) {
      continue;
    }
    const auto& [s, y] = pairs_[k];
    double beta = rho[k] * stats::Dot(s, q);
    stats::Axpy(alpha[k] - beta, y, q);
  }
  return q;
}

AggregationResult FlDetector::Process(const FilterContext& context,
                                      const std::vector<fl::ModelUpdate>& updates) {
  AF_CHECK(!updates.empty());
  AF_CHECK(context.rng != nullptr);

  // Snapshot the current global model so stale bases can be looked up later.
  global_snapshots_[context.round] =
      std::vector<float>(context.global_model.begin(),
                         context.global_model.end());
  while (global_snapshots_.size() > options_.snapshot_window) {
    // Drop the oldest round retained.
    auto oldest = global_snapshots_.begin();
    for (auto it = global_snapshots_.begin(); it != global_snapshots_.end();
         ++it) {
      if (it->first < oldest->first) {
        oldest = it;
      }
    }
    global_snapshots_.erase(oldest);
  }

  // 1. Raw prediction-error scores.
  std::vector<double> raw(updates.size(), -1.0);
  for (std::size_t i = 0; i < updates.size(); ++i) {
    const auto& update = updates[i];
    auto it = clients_.find(update.client_id);
    if (it == clients_.end() ||
        it->second.last_update.size() != update.delta.size()) {
      continue;  // no history yet
    }
    // Global movement since the client's previous base model.
    const auto snap = global_snapshots_.find(it->second.last_base_round);
    if (snap == global_snapshots_.end()) {
      continue;
    }
    std::vector<float> movement = stats::Subtract(
        context.global_model, snap->second);
    std::vector<float> correction = HessianVector(movement);
    std::vector<float> predicted = stats::Add(it->second.last_update, correction);
    raw[i] = stats::Distance(predicted, update.delta);
  }
  // Neutral score (median of known) for history-less clients.
  std::vector<double> known;
  for (double r : raw) {
    if (r >= 0.0) {
      known.push_back(r);
    }
  }
  double neutral = 0.0;
  if (!known.empty()) {
    std::nth_element(known.begin(), known.begin() + known.size() / 2,
                     known.end());
    neutral = known[known.size() / 2];
  }
  for (double& r : raw) {
    if (r < 0.0) {
      r = neutral;
    }
  }

  // 2. Normalize and fold into each client's rolling average.
  double total = 0.0;
  for (double r : raw) {
    total += r;
  }
  std::vector<double> scores(updates.size(), 0.0);
  for (std::size_t i = 0; i < updates.size(); ++i) {
    double normalized = total > 1e-12 ? raw[i] / total : 0.0;
    auto& history = clients_[updates[i].client_id];
    history.scores.push_back(normalized);
    while (history.scores.size() > options_.score_window) {
      history.scores.pop_front();
    }
    double avg = 0.0;
    for (double s : history.scores) {
      avg += s;
    }
    scores[i] = avg / static_cast<double>(history.scores.size());
  }

  // 3. Gap statistic decides whether an attack is present; if so, 2-means
  // splits and the higher-score cluster is rejected.
  std::vector<std::size_t> accepted;
  std::vector<std::size_t> rejected;
  std::size_t k = updates.size() >= 4
                      ? cluster::GapStatisticK(scores,
                                               std::min<std::size_t>(
                                                   options_.max_k,
                                                   updates.size() - 1),
                                               *context.rng)
                      : 1;
  if (k <= 1) {
    for (std::size_t i = 0; i < updates.size(); ++i) {
      accepted.push_back(i);
    }
  } else {
    cluster::KMeansResult split = cluster::KMeans1D(scores, 2, *context.rng);
    const bool high_is_1 = split.centroids[1][0] > split.centroids[0][0];
    const std::size_t bad = high_is_1 ? 1 : 0;
    for (std::size_t i = 0; i < updates.size(); ++i) {
      if (split.assignment[i] == bad) {
        rejected.push_back(i);
      } else {
        accepted.push_back(i);
      }
    }
    if (accepted.empty()) {
      accepted.swap(rejected);  // never reject everything
    }
  }

  // 4. Update curvature pairs and per-client history.
  std::vector<std::span<const float>> all_deltas;
  all_deltas.reserve(updates.size());
  for (const auto& update : updates) {
    all_deltas.push_back(update.delta);
  }
  std::vector<float> mean_update = stats::Mean(all_deltas);
  if (has_prev_) {
    std::vector<float> s = stats::Subtract(context.global_model, prev_global_);
    std::vector<float> y = stats::Subtract(mean_update, prev_mean_update_);
    pairs_.emplace_back(std::move(s), std::move(y));
    while (pairs_.size() > options_.lbfgs_window) {
      pairs_.pop_front();
    }
  }
  prev_global_.assign(context.global_model.begin(), context.global_model.end());
  prev_mean_update_ = mean_update;
  has_prev_ = true;
  for (const auto& update : updates) {
    auto& history = clients_[update.client_id];
    history.last_update = update.delta.ToVector();
    history.last_base_round = context.round;
  }

  return MakeFilterResult(updates, accepted, rejected,
                          context.staleness_weighting);
}

}  // namespace defense

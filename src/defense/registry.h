// Defense construction by name — the defense-side mirror of
// attacks/registry.h.
//
// Every Defense the system knows is reachable through one string-keyed
// table: `Make("asyncfilter", params)` builds it, `ListNames()` enumerates
// what is available, and `Register()` lets a new defense plug itself in
// from its own translation unit with zero example-side wiring (the
// run_experiment `--defense` flag and `--list-defenses` both route through
// here). Names are matched case-insensitively with '-', '_', ' ' and '+'
// stripped, so "Trimmed-Mean", "trimmed_mean" and "trimmedmean" all
// resolve to the same entry.
//
// The defenses defined in defense/ register themselves eagerly; defenses
// living in higher layers (core::AsyncFilter and its ablation variants)
// register from their own .cc via a RegistryEntry at static-init time.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "defense/defense.h"

namespace defense {

// Tuning knobs a factory may consult; one struct keeps the factory
// signature stable as defenses gain parameters (mirrors attacks::AttackParams).
struct DefenseParams {
  // Assumed Byzantine fraction (Krum/Multi-Krum/Trimmed-Mean/NNM).
  double byzantine_fraction = 0.2;
  // Updates per bucket for the Bucketing wrapper.
  std::size_t bucket_size = 2;
};

using DefenseFactory =
    std::function<std::unique_ptr<Defense>(const DefenseParams&)>;

class Registry {
 public:
  // The process-wide table, pre-populated with the defense/ builtins.
  static Registry& Global();

  // Registers `factory` under a canonical name plus aliases. Re-registering
  // an existing name replaces it (lets tests stub entries).
  void Register(const std::string& name, std::vector<std::string> aliases,
                DefenseFactory factory);

  // Builds the named defense; throws util::CheckError on unknown names
  // (the message lists what is available).
  std::unique_ptr<Defense> Make(const std::string& name,
                                const DefenseParams& params = {}) const;

  bool Has(const std::string& name) const;

  // Canonical (registration-time) names, sorted; aliases are not listed.
  std::vector<std::string> ListNames() const;
};

// Convenience free functions over Registry::Global().
std::unique_ptr<Defense> Make(const std::string& name,
                              const DefenseParams& params = {});
std::vector<std::string> ListNames();

// Registers a defense at static-initialization time:
//   static const defense::RegistryEntry kReg{"mydefense", {"alias"},
//       [](const defense::DefenseParams&) { return std::make_unique<My>(); }};
struct RegistryEntry {
  RegistryEntry(const std::string& name, std::vector<std::string> aliases,
                DefenseFactory factory) {
    Registry::Global().Register(name, std::move(aliases), std::move(factory));
  }
};

}  // namespace defense

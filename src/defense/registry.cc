#include "defense/registry.h"

#include "defense/aflguard.h"
#include "defense/bucketing.h"
#include "defense/fldetector.h"
#include "defense/fltrust.h"
#include "defense/krum.h"
#include "defense/nnm.h"
#include "defense/timeseries.h"
#include "defense/trimmed_mean.h"
#include "defense/zeno.h"
#include "util/check.h"
#include "util/registry.h"

namespace defense {
namespace {

// The mechanics (canonicalization, aliases, unknown-name errors) live in
// util::NamedRegistry; this table only adds the defense-specific value type.
util::NamedRegistry<DefenseFactory>& GlobalTable() {
  static auto* table = new util::NamedRegistry<DefenseFactory>("defense");
  return *table;
}

}  // namespace

Registry& Registry::Global() {
  static Registry* registry = [] {
    auto* r = new Registry();
    // defense/-local builtins. AsyncFilter and its ablation variants live a
    // layer up (core/) and register themselves from core/async_filter.cc.
    r->Register("fedbuff", {"nodefense", "none"},
                [](const DefenseParams&) {
                  return std::make_unique<NoDefense>();
                });
    r->Register("fldetector", {},
                [](const DefenseParams&) {
                  return std::make_unique<FlDetector>();
                });
    r->Register("krum", {},
                [](const DefenseParams& p) {
                  return std::make_unique<Krum>(p.byzantine_fraction,
                                                /*multi=*/false);
                });
    r->Register("multikrum", {},
                [](const DefenseParams& p) {
                  return std::make_unique<Krum>(p.byzantine_fraction,
                                                /*multi=*/true);
                });
    r->Register("trimmedmean", {},
                [](const DefenseParams& p) {
                  return std::make_unique<TrimmedMean>(p.byzantine_fraction);
                });
    r->Register("median", {},
                [](const DefenseParams&) {
                  return std::make_unique<CoordinateMedian>();
                });
    r->Register("zeno", {"zenoplusplus"},
                [](const DefenseParams&) {
                  return std::make_unique<ZenoPlusPlus>();
                });
    r->Register("aflguard", {},
                [](const DefenseParams&) {
                  return std::make_unique<AflGuard>();
                });
    r->Register("nnm", {},
                [](const DefenseParams& p) {
                  return std::make_unique<NearestNeighborMixing>(
                      p.byzantine_fraction);
                });
    r->Register("fltrust", {},
                [](const DefenseParams&) {
                  return std::make_unique<FlTrust>();
                });
    r->Register("bucketing", {},
                [](const DefenseParams& p) {
                  return std::make_unique<Bucketing>(p.bucket_size);
                });
    r->Register("tsdetect", {"timeseries"},
                [](const DefenseParams&) {
                  return std::make_unique<TimeSeriesDetector>();
                });
    return r;
  }();
  return *registry;
}

void Registry::Register(const std::string& name,
                        std::vector<std::string> aliases,
                        DefenseFactory factory) {
  AF_CHECK(factory != nullptr) << "registry: null factory for " << name;
  GlobalTable().Register(name, std::move(aliases), std::move(factory));
}

std::unique_ptr<Defense> Registry::Make(const std::string& name,
                                        const DefenseParams& params) const {
  const DefenseFactory factory = GlobalTable().Find(name);
  auto defense = factory(params);
  AF_CHECK(defense != nullptr) << "registry: factory for " << name
                               << " returned null";
  return defense;
}

bool Registry::Has(const std::string& name) const {
  return GlobalTable().Has(name);
}

std::vector<std::string> Registry::ListNames() const {
  return GlobalTable().ListNames();
}

std::unique_ptr<Defense> Make(const std::string& name,
                              const DefenseParams& params) {
  return Registry::Global().Make(name, params);
}

std::vector<std::string> ListNames() { return Registry::Global().ListNames(); }

}  // namespace defense

#include "defense/registry.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <mutex>

#include "defense/aflguard.h"
#include "defense/bucketing.h"
#include "defense/fldetector.h"
#include "defense/fltrust.h"
#include "defense/krum.h"
#include "defense/nnm.h"
#include "defense/trimmed_mean.h"
#include "defense/zeno.h"
#include "util/check.h"

namespace defense {
namespace {

std::string Canonical(const std::string& name) {
  std::string canon;
  for (char c : name) {
    if (c == '-' || c == '_' || c == ' ' || c == '+') {
      continue;
    }
    canon.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return canon;
}

struct Entry {
  std::string display_name;  // registration-time spelling
  DefenseFactory factory;
};

struct Table {
  mutable std::mutex mu;
  // canonical key → entry; aliases map to the same factory but are flagged
  // so ListNames() only reports canonical spellings.
  std::map<std::string, Entry> entries;
  std::map<std::string, std::string> aliases;  // canonical alias → canonical key
};

Table& GlobalTable() {
  static Table* table = new Table();
  return *table;
}

}  // namespace

Registry& Registry::Global() {
  static Registry* registry = [] {
    auto* r = new Registry();
    // defense/-local builtins. AsyncFilter and its ablation variants live a
    // layer up (core/) and register themselves from core/async_filter.cc.
    r->Register("fedbuff", {"nodefense", "none"},
                [](const DefenseParams&) {
                  return std::make_unique<NoDefense>();
                });
    r->Register("fldetector", {},
                [](const DefenseParams&) {
                  return std::make_unique<FlDetector>();
                });
    r->Register("krum", {},
                [](const DefenseParams& p) {
                  return std::make_unique<Krum>(p.byzantine_fraction,
                                                /*multi=*/false);
                });
    r->Register("multikrum", {},
                [](const DefenseParams& p) {
                  return std::make_unique<Krum>(p.byzantine_fraction,
                                                /*multi=*/true);
                });
    r->Register("trimmedmean", {},
                [](const DefenseParams& p) {
                  return std::make_unique<TrimmedMean>(p.byzantine_fraction);
                });
    r->Register("median", {},
                [](const DefenseParams&) {
                  return std::make_unique<CoordinateMedian>();
                });
    r->Register("zeno", {"zenoplusplus"},
                [](const DefenseParams&) {
                  return std::make_unique<ZenoPlusPlus>();
                });
    r->Register("aflguard", {},
                [](const DefenseParams&) {
                  return std::make_unique<AflGuard>();
                });
    r->Register("nnm", {},
                [](const DefenseParams& p) {
                  return std::make_unique<NearestNeighborMixing>(
                      p.byzantine_fraction);
                });
    r->Register("fltrust", {},
                [](const DefenseParams&) {
                  return std::make_unique<FlTrust>();
                });
    r->Register("bucketing", {},
                [](const DefenseParams& p) {
                  return std::make_unique<Bucketing>(p.bucket_size);
                });
    return r;
  }();
  return *registry;
}

void Registry::Register(const std::string& name,
                        std::vector<std::string> aliases,
                        DefenseFactory factory) {
  AF_CHECK(factory != nullptr) << "registry: null factory for " << name;
  const std::string key = Canonical(name);
  AF_CHECK(!key.empty()) << "registry: empty defense name";
  Table& table = GlobalTable();
  std::lock_guard<std::mutex> lock(table.mu);
  table.entries[key] = Entry{name, std::move(factory)};
  for (const std::string& alias : aliases) {
    table.aliases[Canonical(alias)] = key;
  }
}

std::unique_ptr<Defense> Registry::Make(const std::string& name,
                                        const DefenseParams& params) const {
  Table& table = GlobalTable();
  DefenseFactory factory;
  {
    std::lock_guard<std::mutex> lock(table.mu);
    std::string key = Canonical(name);
    auto alias = table.aliases.find(key);
    if (alias != table.aliases.end()) {
      key = alias->second;
    }
    auto it = table.entries.find(key);
    if (it == table.entries.end()) {
      std::string known;
      for (const auto& [k, entry] : table.entries) {
        if (!known.empty()) {
          known += ", ";
        }
        known += k;
      }
      AF_CHECK(false) << "unknown defense name: " << name
                      << " (known: " << known << ")";
    }
    factory = it->second.factory;
  }
  auto defense = factory(params);
  AF_CHECK(defense != nullptr) << "registry: factory for " << name
                               << " returned null";
  return defense;
}

bool Registry::Has(const std::string& name) const {
  Table& table = GlobalTable();
  std::lock_guard<std::mutex> lock(table.mu);
  const std::string key = Canonical(name);
  return table.entries.count(key) > 0 || table.aliases.count(key) > 0;
}

std::vector<std::string> Registry::ListNames() const {
  Table& table = GlobalTable();
  std::lock_guard<std::mutex> lock(table.mu);
  std::vector<std::string> names;
  names.reserve(table.entries.size());
  for (const auto& [key, entry] : table.entries) {
    names.push_back(key);
  }
  return names;  // std::map iteration → already sorted
}

std::unique_ptr<Defense> Make(const std::string& name,
                              const DefenseParams& params) {
  return Registry::Global().Make(name, params);
}

std::vector<std::string> ListNames() { return Registry::Global().ListNames(); }

}  // namespace defense

#include "defense/aflguard.h"

#include "stats/vec_ops.h"
#include "util/check.h"

namespace defense {

AflGuard::AflGuard(double lambda) : lambda_(lambda) {
  AF_CHECK_GT(lambda, 0.0);
}

AggregationResult AflGuard::Process(const FilterContext& context,
                                    const std::vector<fl::ModelUpdate>& updates) {
  AF_CHECK(!updates.empty());
  AF_CHECK(!context.server_reference.empty())
      << "AFLGuard requires a server reference update";
  const double bound = lambda_ * stats::L2Norm(context.server_reference);

  std::vector<std::size_t> accepted;
  std::vector<std::size_t> rejected;
  for (std::size_t i = 0; i < updates.size(); ++i) {
    const double deviation =
        stats::Distance(updates[i].delta, context.server_reference);
    if (deviation <= bound) {
      accepted.push_back(i);
    } else {
      rejected.push_back(i);
    }
  }
  if (accepted.empty()) {
    accepted.swap(rejected);  // degenerate round: keep learning
  }
  return MakeFilterResult(updates, accepted, rejected,
                          context.staleness_weighting);
}

}  // namespace defense

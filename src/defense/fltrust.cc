#include "defense/fltrust.h"

#include <algorithm>

#include "stats/vec_ops.h"
#include "util/check.h"

namespace defense {

AggregationResult FlTrust::Process(const FilterContext& context,
                                   const std::vector<fl::ModelUpdate>& updates) {
  AF_CHECK(!updates.empty());
  AF_CHECK(!context.server_reference.empty())
      << "FLtrust requires a server reference update";
  const double server_norm = stats::L2Norm(context.server_reference);

  AggregationResult result;
  result.verdicts.assign(updates.size(), Verdict::kRejected);
  std::vector<std::vector<float>> rescaled;
  std::vector<double> trust;
  for (std::size_t i = 0; i < updates.size(); ++i) {
    const double cos =
        stats::CosineSimilarity(context.server_reference, updates[i].delta);
    const double score = std::max(cos, 0.0);  // ReLU-clipped trust
    if (score <= 0.0) {
      continue;
    }
    result.verdicts[i] = Verdict::kAccepted;
    std::vector<float> scaled = updates[i].delta.ToVector();
    const double norm = stats::L2Norm(scaled);
    if (norm > 1e-12 && server_norm > 1e-12) {
      stats::Scale(scaled, server_norm / norm);
    }
    rescaled.push_back(std::move(scaled));
    trust.push_back(score);
  }
  if (!rescaled.empty()) {
    result.aggregated_delta = stats::WeightedMean(rescaled, trust);
  }
  return result;
}

}  // namespace defense

#include "defense/nnm.h"

#include <algorithm>
#include <numeric>

#include "stats/vec_ops.h"
#include "util/check.h"

namespace defense {

NearestNeighborMixing::NearestNeighborMixing(double assumed_malicious_fraction)
    : fraction_(assumed_malicious_fraction) {
  AF_CHECK_GE(fraction_, 0.0);
  AF_CHECK_LT(fraction_, 0.5);
}

AggregationResult NearestNeighborMixing::Process(
    const FilterContext& /*context*/,
    const std::vector<fl::ModelUpdate>& updates) {
  AF_CHECK(!updates.empty());
  const std::size_t n = updates.size();
  const std::size_t m = static_cast<std::size_t>(fraction_ * static_cast<double>(n));
  const std::size_t mix = n > m + 1 ? n - m - 1 : n - 1;  // neighbours mixed in

  // Distances come from the streaming scorer: each of the n²/2 pairs is
  // computed once and served from the Gram cache thereafter, instead of
  // being recomputed inside the sort comparator.
  scorer_.Clear();
  std::vector<int> slots(n);
  for (std::size_t i = 0; i < n; ++i) {
    slots[i] = scorer_.Insert(updates[i].delta);
  }
  std::vector<std::vector<float>> mixed;
  mixed.reserve(n);
  std::vector<std::size_t> order(n);
  std::vector<double> row(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      row[j] = scorer_.PairwiseSquaredDistance(slots[i], slots[j]);
    }
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return row[a] < row[b];
    });
    // order[0] == i (distance 0); mix the first mix+1 entries.
    std::vector<std::span<const float>> neighbours;
    for (std::size_t k = 0; k <= mix && k < n; ++k) {
      neighbours.push_back(updates[order[k]].delta);
    }
    mixed.push_back(stats::Mean(neighbours));
  }

  AggregationResult result;
  result.verdicts.assign(n, Verdict::kAccepted);
  result.aggregated_delta = stats::Mean(mixed);
  return result;
}

}  // namespace defense

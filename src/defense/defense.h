// Server-side defense interface.
//
// A Defense consumes the buffered updates of one aggregation round and
// produces (a) the aggregated delta to apply to the global model, (b) a
// per-update verdict record, and (c) any updates to defer into the next
// buffer. AsyncFilter, the baselines (FedBuff = NoDefense, FLDetector) and
// the classical robust aggregators all implement this one interface — the
// paper's "plug-and-play" claim, made literal.
#pragma once

#include <random>
#include <span>
#include <string>
#include <vector>

#include "defense/staleness_weighting.h"
#include "fl/types.h"
#include "util/serial.h"

namespace defense {

// What the server legitimately knows at aggregation time. Note there is no
// clean dataset here: defenses that assume one (Zeno++, AFLGuard) receive a
// server reference update that the simulator computes from a simulated root
// dataset, and must declare the requirement via RequiresServerReference().
struct FilterContext {
  std::size_t round = 0;
  std::span<const float> global_model;
  std::size_t max_staleness = 20;
  // Reference update trained on the server's (simulated) clean root dataset;
  // empty unless the defense requires it.
  std::span<const float> server_reference;
  // How aggregation weights discount staleness (server policy; defenses
  // pass it through to WeightedAverage so the whole system is consistent).
  StalenessWeightingConfig staleness_weighting;
  std::mt19937_64* rng = nullptr;
};

enum class Verdict { kAccepted, kDeferred, kRejected };

struct AggregationResult {
  // Weighted-average delta over the accepted updates; empty when nothing was
  // accepted (the server then skips the model step for this round).
  std::vector<float> aggregated_delta;
  // Aligned with the input updates.
  std::vector<Verdict> verdicts;
  // Updates to re-enqueue into the next buffer (mid-band deferral).
  std::vector<fl::ModelUpdate> deferred;
  // Optional per-update suspicious scores, aligned with the input updates.
  // Defenses that score (AsyncFilter) fill this for the audit trail; empty
  // means "this defense does not score".
  std::vector<double> scores;
  // Why this round's verdicts deviate from the defense's normal filtering
  // path (e.g. "scores_degenerate" when AsyncFilter cannot separate the
  // buffer and accepts everything). Empty on ordinary rounds. Propagated to
  // the audit trail so silent fallbacks leave a visible trace.
  std::string reason;
};

class Defense {
 public:
  virtual ~Defense() = default;

  virtual AggregationResult Process(const FilterContext& context,
                                    const std::vector<fl::ModelUpdate>& updates) = 0;

  virtual std::string Name() const = 0;

  // Defenses carrying cross-round state (AsyncFilter's moving averages,
  // FLDetector's histories) reset here between independent runs.
  virtual void Reset() {}

  // Checkpoint hooks — the counterpart of Reset() for resumable runs.
  //
  // SaveState appends every piece of cross-round state to `w`; LoadState
  // reads back exactly the bytes SaveState wrote, restoring the defense to
  // a bit-identical point (a resumed simulation must produce the same
  // verdicts and aggregates as an uninterrupted one). Contract:
  //   * Load(Save(x)) must leave the defense indistinguishable from x —
  //     serialize floating-point state bit-exactly (util::serial does),
  //     and serialize unordered containers in a canonical (sorted) order.
  //   * Constructor parameters/options are NOT state: the simulator
  //     recreates the defense from its configuration before LoadState runs.
  //   * Stateless defenses keep the default no-ops; a defense with
  //     cross-round state that skips these hooks forfeits bit-identical
  //     resume (the checkpoint layer cannot see its state).
  virtual void SaveState(util::serial::Writer& /*w*/) const {}
  virtual void LoadState(util::serial::Reader& /*r*/) {}

  // True for clean-dataset defenses (Zeno++/AFLGuard); the simulator then
  // provisions a root dataset and fills FilterContext::server_reference.
  virtual bool RequiresServerReference() const { return false; }
};

// Sample-count-weighted average of updates[indices]; FedAvg-style p_i with
// the configured staleness discount applied.
std::vector<float> WeightedAverage(const std::vector<fl::ModelUpdate>& updates,
                                   const std::vector<std::size_t>& indices,
                                   const StalenessWeightingConfig& weighting =
                                       StalenessWeightingConfig{});

// Builds a full AggregationResult from an accept/reject index split with
// weighted-average aggregation (the common tail of filtering defenses).
AggregationResult MakeFilterResult(const std::vector<fl::ModelUpdate>& updates,
                                   const std::vector<std::size_t>& accepted,
                                   const std::vector<std::size_t>& rejected,
                                   const StalenessWeightingConfig& weighting =
                                       StalenessWeightingConfig{});

// FedBuff baseline: accepts everything (no defense).
class NoDefense : public Defense {
 public:
  AggregationResult Process(const FilterContext& context,
                            const std::vector<fl::ModelUpdate>& updates) override;
  std::string Name() const override { return "FedBuff"; }
};

}  // namespace defense

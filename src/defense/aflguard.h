// AFLGuard (Fang et al., ACSAC 2022) — clean-dataset baseline.
//
// A client update is benign iff it does not deviate too far from the
// server's own clean update in magnitude and direction:
//   ‖g_c − g_s‖ ≤ λ‖g_s‖.
#pragma once

#include "defense/defense.h"

namespace defense {

class AflGuard : public Defense {
 public:
  explicit AflGuard(double lambda = 2.0);

  AggregationResult Process(const FilterContext& context,
                            const std::vector<fl::ModelUpdate>& updates) override;
  std::string Name() const override { return "AFLGuard"; }
  bool RequiresServerReference() const override { return true; }

 private:
  double lambda_;
};

}  // namespace defense

#include "defense/krum.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace defense {

Krum::Krum(double assumed_malicious_fraction, bool multi)
    : fraction_(assumed_malicious_fraction), multi_(multi) {
  AF_CHECK_GE(fraction_, 0.0);
  AF_CHECK_LT(fraction_, 0.5);
}

AggregationResult Krum::Process(const FilterContext& context,
                                const std::vector<fl::ModelUpdate>& updates) {
  AF_CHECK(!updates.empty());
  const std::size_t n = updates.size();
  const std::size_t m = static_cast<std::size_t>(fraction_ * static_cast<double>(n));
  // Krum scores need n - m - 2 >= 1 neighbours; degrade to plain averaging
  // on tiny buffers.
  if (n < m + 3) {
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), 0u);
    return MakeFilterResult(updates, all, {}, context.staleness_weighting);
  }
  const std::size_t neighbours = n - m - 2;

  // Pairwise squared distances, answered by the streaming scorer (cached
  // norms + Gram dots; AF_SCORER=exact recomputes the identical formula).
  scorer_.Clear();
  std::vector<int> slots(n);
  for (std::size_t i = 0; i < n; ++i) {
    slots[i] = scorer_.Insert(updates[i].delta);
  }
  std::vector<double> d2(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double d = scorer_.PairwiseSquaredDistance(slots[i], slots[j]);
      d2[i * n + j] = d;
      d2[j * n + i] = d;
    }
  }
  std::vector<double> scores(n, 0.0);
  std::vector<double> row(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t w = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) {
        row[w++] = d2[i * n + j];
      }
    }
    std::partial_sort(row.begin(), row.begin() + neighbours, row.end());
    scores[i] = std::accumulate(row.begin(), row.begin() + neighbours, 0.0);
  }

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] < scores[b]; });

  const std::size_t keep = multi_ ? n - m : 1;
  std::vector<std::size_t> accepted(order.begin(), order.begin() + keep);
  std::vector<std::size_t> rejected(order.begin() + keep, order.end());
  return MakeFilterResult(updates, accepted, rejected,
                          context.staleness_weighting);
}

}  // namespace defense

// Zeno++ (Xie et al., ICML 2020) — clean-dataset baseline.
//
// The server trains its own update on a trusted root dataset each round and
// accepts a client update only when its cosine similarity with the server
// update is positive; accepted updates are rescaled to the server update's
// norm. Included to quantify how far AsyncFilter gets *without* the clean-
// dataset assumption these methods require (the simulator provisions the
// root dataset — see Defense::RequiresServerReference()).
#pragma once

#include "defense/defense.h"

namespace defense {

class ZenoPlusPlus : public Defense {
 public:
  // `rho` adds a magnitude penalty: score = cos·‖g_s‖ − rho·‖g_c‖ must be
  // positive; rho = 0 reduces to the pure cosine test.
  explicit ZenoPlusPlus(double rho = 0.0);

  AggregationResult Process(const FilterContext& context,
                            const std::vector<fl::ModelUpdate>& updates) override;
  std::string Name() const override { return "Zeno++"; }
  bool RequiresServerReference() const override { return true; }

 private:
  double rho_;
};

}  // namespace defense

// Cross-round multidimensional time-series anomaly detection ("tsdetect").
//
// AsyncFilter judges an update against its staleness group *within* a round;
// this detector judges it against the sending client's own history *across*
// rounds. Per client it tracks a three-dimensional trajectory:
//
//   norm    ‖ω‖₂                         — magnitude of the update
//   cosine  cos(ω, Δ_global)             — alignment with the direction the
//                                          global model moved last round
//   drift   ‖ω − ω_prev‖₂ / (1 + τ)     — staleness-adjusted step from the
//                                          client's previous update
//
// Each feature accumulates into a ring of stats::RunningStats windows: the
// current window absorbs `window` observations, then the ring advances and
// the oldest window is dropped — bounded history without storing raw
// trajectories. An arriving update is z-scored per feature against the
// merged ring statistics; the anomaly score is the worst feature's |z|, and
// scores above `z_threshold` are rejected. Clients with fewer than
// `min_history` observations are accepted on faith (no basis to judge), so a
// model-poisoning client betrays itself the moment its trajectory departs
// from its own warm-up behaviour.
//
// Fully deterministic (no RNG) and checkpointable: SaveState serializes the
// complete per-client ring state key-sorted, so kill-resume is bit-identical.
#pragma once

#include <array>
#include <cstddef>
#include <map>
#include <vector>

#include "defense/defense.h"
#include "stats/running_stats.h"

namespace defense {

struct TimeSeriesDetectorOptions {
  std::size_t ring_windows = 4;   // RunningStats windows retained per feature
  std::size_t window = 8;         // observations absorbed per window
  std::size_t min_history = 3;    // observations before a client is judged
  double z_threshold = 3.5;       // reject when the worst |z| exceeds this
};

class TimeSeriesDetector : public Defense {
 public:
  static constexpr std::size_t kFeatures = 3;

  explicit TimeSeriesDetector(TimeSeriesDetectorOptions options = {});

  AggregationResult Process(const FilterContext& context,
                            const std::vector<fl::ModelUpdate>& updates) override;
  std::string Name() const override { return "TSDetect"; }
  void Reset() override;
  // Cross-round state: the previous global delta, and per client the feature
  // rings, ring cursor, observation count and previous update. Serialized
  // key-sorted (std::map) so identical states produce identical bytes;
  // options are configuration, not state.
  void SaveState(util::serial::Writer& w) const override;
  void LoadState(util::serial::Reader& r) override;

 private:
  struct ClientTrack {
    // rings[f][slot]: per-feature ring of window statistics.
    std::array<std::vector<stats::RunningStats>, kFeatures> rings;
    std::size_t ring_pos = 0;     // slot currently absorbing
    std::size_t in_window = 0;    // observations absorbed into that slot
    std::uint64_t observations = 0;
    std::vector<float> prev_update;
  };

  std::array<double, kFeatures> Features(const fl::ModelUpdate& update,
                                         const ClientTrack& track) const;
  // Worst-feature |z| against the merged ring statistics; 0 until the track
  // holds min_history observations.
  double AnomalyScore(const std::array<double, kFeatures>& features,
                      const ClientTrack& track) const;
  void Absorb(ClientTrack& track, const std::array<double, kFeatures>& features,
              const fl::ModelUpdate& update);

  TimeSeriesDetectorOptions options_;
  std::vector<float> prev_aggregate_;  // last round's aggregated delta
  std::map<int, ClientTrack> clients_;
};

}  // namespace defense

#include "defense/timeseries.h"

#include <algorithm>
#include <cmath>

#include "stats/vec_ops.h"
#include "util/check.h"

namespace defense {
namespace {

// Variance floor for z-scoring: absolute epsilon plus a relative term so a
// client with a very steady trajectory (tiny stddev) does not turn ordinary
// jitter into huge z values.
double DeviationFloor(double mean) {
  return 1e-9 + 1e-3 * std::fabs(mean);
}

}  // namespace

TimeSeriesDetector::TimeSeriesDetector(TimeSeriesDetectorOptions options)
    : options_(options) {
  AF_CHECK_GE(options_.ring_windows, 1u);
  AF_CHECK_GE(options_.window, 1u);
}

void TimeSeriesDetector::Reset() {
  prev_aggregate_.clear();
  clients_.clear();
}

std::array<double, TimeSeriesDetector::kFeatures> TimeSeriesDetector::Features(
    const fl::ModelUpdate& update, const ClientTrack& track) const {
  std::array<double, kFeatures> f{};
  f[0] = stats::L2Norm(update.delta);
  f[1] = prev_aggregate_.empty()
             ? 0.0
             : stats::CosineSimilarity(update.delta, prev_aggregate_);
  f[2] = track.prev_update.empty()
             ? 0.0
             : stats::Distance(update.delta, track.prev_update) /
                   (1.0 + static_cast<double>(update.staleness));
  return f;
}

double TimeSeriesDetector::AnomalyScore(
    const std::array<double, kFeatures>& features,
    const ClientTrack& track) const {
  if (track.observations < options_.min_history) {
    return 0.0;
  }
  double worst = 0.0;
  for (std::size_t f = 0; f < kFeatures; ++f) {
    stats::RunningStats merged;
    for (const stats::RunningStats& window : track.rings[f]) {
      merged.Merge(window);
    }
    if (merged.count() < 2) {
      continue;
    }
    const double dev = std::max(merged.stddev(), DeviationFloor(merged.mean()));
    worst = std::max(worst, std::fabs(features[f] - merged.mean()) / dev);
  }
  return worst;
}

void TimeSeriesDetector::Absorb(ClientTrack& track,
                                const std::array<double, kFeatures>& features,
                                const fl::ModelUpdate& update) {
  if (track.rings[0].empty()) {
    for (auto& ring : track.rings) {
      ring.assign(options_.ring_windows, stats::RunningStats{});
    }
  }
  if (track.in_window == options_.window) {
    track.ring_pos = (track.ring_pos + 1) % options_.ring_windows;
    for (auto& ring : track.rings) {
      ring[track.ring_pos] = stats::RunningStats{};  // drop the oldest window
    }
    track.in_window = 0;
  }
  for (std::size_t f = 0; f < kFeatures; ++f) {
    track.rings[f][track.ring_pos].Add(features[f]);
  }
  ++track.in_window;
  ++track.observations;
  track.prev_update.assign(update.delta.begin(), update.delta.end());
}

AggregationResult TimeSeriesDetector::Process(
    const FilterContext& context, const std::vector<fl::ModelUpdate>& updates) {
  AF_CHECK(!updates.empty());

  std::vector<double> scores(updates.size(), 0.0);
  std::vector<std::array<double, kFeatures>> features(updates.size());
  std::vector<std::size_t> accepted;
  std::vector<std::size_t> rejected;
  for (std::size_t i = 0; i < updates.size(); ++i) {
    ClientTrack& track = clients_[updates[i].client_id];
    features[i] = Features(updates[i], track);
    scores[i] = AnomalyScore(features[i], track);
    if (scores[i] > options_.z_threshold) {
      rejected.push_back(i);
    } else {
      accepted.push_back(i);
    }
  }

  // Absorb accepted trajectories only: a rejected update must not poison the
  // history it was judged against. Absorption happens after the whole buffer
  // is scored so same-round peers of one client are judged on equal footing.
  for (std::size_t idx : accepted) {
    Absorb(clients_[updates[idx].client_id], features[idx], updates[idx]);
  }

  AggregationResult result =
      MakeFilterResult(updates, accepted, rejected, context.staleness_weighting);
  result.scores = std::move(scores);
  if (!result.aggregated_delta.empty()) {
    prev_aggregate_ = result.aggregated_delta;
  }
  return result;
}

void TimeSeriesDetector::SaveState(util::serial::Writer& w) const {
  w.FloatVec(prev_aggregate_);
  w.U64(clients_.size());
  for (const auto& [client_id, track] : clients_) {
    w.I64(client_id);
    w.U64(track.observations);
    w.U64(track.ring_pos);
    w.U64(track.in_window);
    w.FloatVec(track.prev_update);
    w.U64(track.rings[0].size());
    for (const auto& ring : track.rings) {
      for (const stats::RunningStats& window : ring) {
        w.U64(window.count());
        w.F64(window.mean());
        w.F64(window.m2());
      }
    }
  }
}

void TimeSeriesDetector::LoadState(util::serial::Reader& r) {
  prev_aggregate_ = r.FloatVec();
  clients_.clear();
  const std::uint64_t n = r.U64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const int client_id = static_cast<int>(r.I64());
    ClientTrack& track = clients_[client_id];
    track.observations = r.U64();
    track.ring_pos = r.U64();
    track.in_window = r.U64();
    track.prev_update = r.FloatVec();
    const std::uint64_t slots = r.U64();
    for (auto& ring : track.rings) {
      ring.assign(slots, stats::RunningStats{});
      for (stats::RunningStats& window : ring) {
        const std::uint64_t count = r.U64();
        const double mean = r.F64();
        const double m2 = r.F64();
        window.RestoreState(count, mean, m2);
      }
    }
  }
}

}  // namespace defense

#include "defense/defense.h"

#include <cmath>

#include "stats/vec_ops.h"
#include "util/check.h"

namespace defense {

std::vector<float> WeightedAverage(const std::vector<fl::ModelUpdate>& updates,
                                   const std::vector<std::size_t>& indices,
                                   const StalenessWeightingConfig& weighting) {
  AF_CHECK(!indices.empty());
  std::vector<std::span<const float>> deltas;
  std::vector<double> weights;
  deltas.reserve(indices.size());
  weights.reserve(indices.size());
  for (std::size_t idx : indices) {
    AF_CHECK_LT(idx, updates.size());
    deltas.push_back(updates[idx].delta);
    // FedBuff-style weighting: sample count damped by the configured
    // staleness discount, which keeps stale jolts from whipping the global
    // model around.
    const double samples = static_cast<double>(
        updates[idx].num_samples > 0 ? updates[idx].num_samples : 1);
    weights.push_back(samples *
                      StalenessDiscount(weighting, updates[idx].staleness));
  }
  return stats::WeightedMean(deltas, weights);
}

AggregationResult MakeFilterResult(const std::vector<fl::ModelUpdate>& updates,
                                   const std::vector<std::size_t>& accepted,
                                   const std::vector<std::size_t>& rejected,
                                   const StalenessWeightingConfig& weighting) {
  AggregationResult result;
  result.verdicts.assign(updates.size(), Verdict::kAccepted);
  for (std::size_t idx : rejected) {
    AF_CHECK_LT(idx, updates.size());
    result.verdicts[idx] = Verdict::kRejected;
  }
  for (std::size_t idx : accepted) {
    AF_CHECK_LT(idx, updates.size());
    AF_CHECK(result.verdicts[idx] == Verdict::kAccepted)
        << "update both accepted and rejected";
  }
  AF_CHECK_EQ(accepted.size() + rejected.size(), updates.size())
      << "accept/reject split must cover every update";
  if (!accepted.empty()) {
    result.aggregated_delta = WeightedAverage(updates, accepted, weighting);
  }
  return result;
}

AggregationResult NoDefense::Process(
    const FilterContext& context,
    const std::vector<fl::ModelUpdate>& updates) {
  std::vector<std::size_t> all(updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    all[i] = i;
  }
  return MakeFilterResult(updates, all, {}, context.staleness_weighting);
}

}  // namespace defense

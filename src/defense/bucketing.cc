#include "defense/bucketing.h"

#include <algorithm>
#include <numeric>

#include "defense/trimmed_mean.h"
#include "stats/vec_ops.h"
#include "util/check.h"

namespace defense {

Bucketing::Bucketing(std::size_t bucket_size, std::unique_ptr<Defense> inner)
    : bucket_size_(bucket_size),
      inner_(inner ? std::move(inner)
                   : std::make_unique<CoordinateMedian>()) {
  AF_CHECK_GT(bucket_size_, 0u);
}

std::string Bucketing::Name() const {
  return "Bucketing(" + std::to_string(bucket_size_) + ")+" + inner_->Name();
}

void Bucketing::Reset() { inner_->Reset(); }

AggregationResult Bucketing::Process(const FilterContext& context,
                                     const std::vector<fl::ModelUpdate>& updates) {
  AF_CHECK(!updates.empty());
  AF_CHECK(context.rng != nullptr) << "Bucketing shuffles with the server RNG";

  // Random permutation, then contiguous buckets of size s.
  std::vector<std::size_t> order(updates.size());
  std::iota(order.begin(), order.end(), 0u);
  std::shuffle(order.begin(), order.end(), *context.rng);

  std::vector<fl::ModelUpdate> bucket_means;
  for (std::size_t start = 0; start < order.size(); start += bucket_size_) {
    const std::size_t end = std::min(start + bucket_size_, order.size());
    std::vector<std::span<const float>> members;
    std::size_t samples = 0;
    std::size_t staleness_sum = 0;
    for (std::size_t k = start; k < end; ++k) {
      const auto& u = updates[order[k]];
      members.push_back(u.delta);
      samples += u.num_samples;
      staleness_sum += u.staleness;
    }
    fl::ModelUpdate mean;
    mean.client_id = -static_cast<int>(start / bucket_size_) - 1;  // synthetic
    mean.delta = stats::Mean(members);
    mean.num_samples = samples;
    mean.staleness = staleness_sum / (end - start);
    bucket_means.push_back(std::move(mean));
  }

  AggregationResult inner_result = inner_->Process(context, bucket_means);

  // Per-client verdicts: a client is rejected iff its bucket was rejected.
  AggregationResult result;
  result.aggregated_delta = std::move(inner_result.aggregated_delta);
  result.verdicts.assign(updates.size(), Verdict::kAccepted);
  for (std::size_t b = 0; b < bucket_means.size(); ++b) {
    if (inner_result.verdicts[b] == Verdict::kRejected) {
      const std::size_t start = b * bucket_size_;
      const std::size_t end = std::min(start + bucket_size_, order.size());
      for (std::size_t k = start; k < end; ++k) {
        result.verdicts[order[k]] = Verdict::kRejected;
      }
    }
  }
  return result;
}

}  // namespace defense

// Nearest-Neighbour Mixing (Allouah et al., AISTATS 2023).
//
// Pre-aggregation: each update is replaced by the average of itself and its
// n − m − 1 nearest neighbours, shrinking heterogeneity before a plain mean.
#pragma once

#include "defense/defense.h"
#include "score/scorer.h"

namespace defense {

class NearestNeighborMixing : public Defense {
 public:
  explicit NearestNeighborMixing(double assumed_malicious_fraction = 0.2);

  AggregationResult Process(const FilterContext& context,
                            const std::vector<fl::ModelUpdate>& updates) override;
  std::string Name() const override { return "NNM"; }

 private:
  double fraction_;
  // Pairwise-distance backend; caching matters here — the neighbour sort
  // previously recomputed ‖ω_i − ω_j‖² inside the comparator (O(n² log n)
  // full-dimension passes per buffer), the scorer answers each pair once.
  score::StreamingScorer scorer_;
};

}  // namespace defense

#include "defense/zeno.h"

#include "stats/vec_ops.h"
#include "util/check.h"

namespace defense {

ZenoPlusPlus::ZenoPlusPlus(double rho) : rho_(rho) { AF_CHECK_GE(rho, 0.0); }

AggregationResult ZenoPlusPlus::Process(
    const FilterContext& context, const std::vector<fl::ModelUpdate>& updates) {
  AF_CHECK(!updates.empty());
  AF_CHECK(!context.server_reference.empty())
      << "Zeno++ requires a server reference update";
  const double server_norm = stats::L2Norm(context.server_reference);

  AggregationResult result;
  result.verdicts.assign(updates.size(), Verdict::kRejected);
  std::vector<std::vector<float>> normalized;
  std::vector<double> weights;
  for (std::size_t i = 0; i < updates.size(); ++i) {
    const auto& delta = updates[i].delta;
    const double cos = stats::CosineSimilarity(context.server_reference, delta);
    const double client_norm = stats::L2Norm(delta);
    const double score = cos * server_norm - rho_ * client_norm;
    if (cos > 0.0 && score > 0.0) {
      result.verdicts[i] = Verdict::kAccepted;
      // Rescale to the server update's norm (Zeno++'s normalisation step).
      std::vector<float> scaled = delta.ToVector();
      if (client_norm > 1e-12 && server_norm > 1e-12) {
        stats::Scale(scaled, server_norm / client_norm);
      }
      normalized.push_back(std::move(scaled));
      const double samples = static_cast<double>(
          updates[i].num_samples > 0 ? updates[i].num_samples : 1);
      weights.push_back(samples * StalenessDiscount(context.staleness_weighting,
                                                    updates[i].staleness));
    }
  }
  if (!normalized.empty()) {
    result.aggregated_delta = stats::WeightedMean(normalized, weights);
  }
  return result;
}

}  // namespace defense

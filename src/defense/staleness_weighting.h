// Staleness-discounted aggregation weights.
//
// The paper's Eq. 3 aggregates with abstract weights p_i; FedBuff (Nguyen
// et al., 2022) instantiates them with a staleness discount s(τ) so stale
// updates cannot whip the global model around. The simulator exposes the
// choice through FilterContext so every defense aggregates consistently and
// the discount itself can be ablated (bench_ablation_staleness_weighting).
#pragma once

#include <cstddef>

namespace defense {

enum class StalenessWeighting {
  kNone,         // s(τ) = 1 — the paper's Eq. 3 read literally
  kInverseSqrt,  // s(τ) = 1/√(1+τ) — FedBuff's default, ours too
  kPolynomial,   // s(τ) = (1+τ)^-a with configurable exponent a
};

struct StalenessWeightingConfig {
  StalenessWeighting kind = StalenessWeighting::kInverseSqrt;
  double exponent = 1.0;  // kPolynomial only
};

// The discount s(τ) ∈ (0, 1].
double StalenessDiscount(const StalenessWeightingConfig& config,
                         std::size_t staleness);

}  // namespace defense

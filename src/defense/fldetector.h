// FLDetector baseline (Zhang et al., KDD 2022), adapted to the async buffer.
//
// The server predicts each client's update from its previous one plus an
// L-BFGS Hessian-vector correction for how far the global model moved since,
// scores clients by prediction error, and splits scores with k-means gated
// by a gap statistic. Designed for synchronous FL — the paper uses it to
// show staleness-unaware detection misfires in AFL, which this adaptation
// reproduces: predictions use each client's true base round, but the method
// still ignores staleness when normalising and clustering.
#pragma once

#include <cstddef>
#include <deque>
#include <unordered_map>
#include <vector>

#include "defense/defense.h"

namespace defense {

struct FlDetectorOptions {
  std::size_t lbfgs_window = 5;   // stored (s, y) curvature pairs
  std::size_t score_window = 3;   // per-client score moving average
  std::size_t max_k = 3;          // gap-statistic search range
  std::size_t snapshot_window = 64;  // retained global-model versions
};

class FlDetector : public Defense {
 public:
  explicit FlDetector(FlDetectorOptions options = {});

  AggregationResult Process(const FilterContext& context,
                            const std::vector<fl::ModelUpdate>& updates) override;
  std::string Name() const override { return "FLDetector"; }
  void Reset() override;
  // Cross-round state: L-BFGS curvature pairs, retained global snapshots,
  // previous-round aggregates, and per-client histories. Unordered maps are
  // serialized key-sorted so identical states produce identical bytes.
  void SaveState(util::serial::Writer& w) const override;
  void LoadState(util::serial::Reader& r) override;

 private:
  // Approximates H·v via L-BFGS two-loop recursion on the stored curvature
  // pairs with the roles of s and y swapped (B-approximation).
  std::vector<float> HessianVector(const std::vector<float>& v) const;

  struct ClientHistory {
    std::vector<float> last_update;
    std::size_t last_base_round = 0;
    std::deque<double> scores;  // rolling normalized scores
  };

  FlDetectorOptions options_;
  std::deque<std::pair<std::vector<float>, std::vector<float>>> pairs_;  // (s, y)
  std::unordered_map<std::size_t, std::vector<float>> global_snapshots_;
  std::vector<float> prev_global_;
  std::vector<float> prev_mean_update_;
  bool has_prev_ = false;
  std::unordered_map<int, ClientHistory> clients_;
};

}  // namespace defense

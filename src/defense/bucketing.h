// Bucketing pre-aggregation (Karimireddy et al., 2020; paper §2.3).
//
// Randomly permutes the buffered updates into buckets of size s and
// averages each bucket before handing the bucket means to an inner robust
// aggregator; mixing shrinks heterogeneity so the inner rule (here
// coordinate median) separates honest mass from attackers more reliably.
#pragma once

#include <memory>

#include "defense/defense.h"

namespace defense {

class Bucketing : public Defense {
 public:
  // `bucket_size` = s; `inner` consumes the bucket means (defaults to
  // coordinate median when null).
  explicit Bucketing(std::size_t bucket_size = 2,
                     std::unique_ptr<Defense> inner = nullptr);

  AggregationResult Process(const FilterContext& context,
                            const std::vector<fl::ModelUpdate>& updates) override;
  std::string Name() const override;
  void Reset() override;

 private:
  std::size_t bucket_size_;
  std::unique_ptr<Defense> inner_;
};

}  // namespace defense

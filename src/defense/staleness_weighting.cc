#include "defense/staleness_weighting.h"

#include <cmath>

#include "util/check.h"

namespace defense {

double StalenessDiscount(const StalenessWeightingConfig& config,
                         std::size_t staleness) {
  const double tau = static_cast<double>(staleness);
  switch (config.kind) {
    case StalenessWeighting::kNone:
      return 1.0;
    case StalenessWeighting::kInverseSqrt:
      return 1.0 / std::sqrt(1.0 + tau);
    case StalenessWeighting::kPolynomial:
      AF_CHECK_GE(config.exponent, 0.0);
      return std::pow(1.0 + tau, -config.exponent);
  }
  AF_CHECK(false) << "unhandled staleness weighting";
  return 1.0;
}

}  // namespace defense

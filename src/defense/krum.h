// Krum / Multi-Krum robust aggregation (Blanchard et al., 2017).
//
// Classical synchronous baseline used in the extension study: each update is
// scored by the sum of squared distances to its n − m − 2 nearest
// neighbours; Krum keeps the single best, Multi-Krum the best n − m.
#pragma once

#include "defense/defense.h"
#include "score/scorer.h"

namespace defense {

class Krum : public Defense {
 public:
  // `assumed_malicious_fraction` sets m = ⌊fraction · n⌋ per buffer.
  explicit Krum(double assumed_malicious_fraction = 0.2, bool multi = true);

  AggregationResult Process(const FilterContext& context,
                            const std::vector<fl::ModelUpdate>& updates) override;
  std::string Name() const override { return multi_ ? "Multi-Krum" : "Krum"; }

 private:
  double fraction_;
  bool multi_;
  // Pairwise-distance backend: the Gram plane caches every ⟨ω_i, ω_j⟩ so the
  // n × n distance table is assembled from cached norms and dots.
  score::StreamingScorer scorer_;
};

}  // namespace defense

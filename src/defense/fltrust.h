// FLtrust (Cao et al., NDSS 2021) — clean-dataset baseline (paper §2.3).
//
// The server trains its own update g₀ on a trusted root dataset; each client
// update gets trust score TSᵢ = ReLU(cos(gᵢ, g₀)), is rescaled to ‖g₀‖, and
// the aggregate is the TS-weighted mean. Synchronous by design — included
// in the extension study for the same reason as Zeno++/AFLGuard.
#pragma once

#include "defense/defense.h"

namespace defense {

class FlTrust : public Defense {
 public:
  AggregationResult Process(const FilterContext& context,
                            const std::vector<fl::ModelUpdate>& updates) override;
  std::string Name() const override { return "FLtrust"; }
  bool RequiresServerReference() const override { return true; }
};

}  // namespace defense

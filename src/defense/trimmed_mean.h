// Coordinate-wise Trimmed-Mean and Median (Yin et al., 2018).
//
// Aggregation-rule defenses: they never reject a specific client, they make
// the aggregate itself robust. Verdicts are therefore all-accepted and the
// aggregated delta is computed coordinate-wise.
#pragma once

#include "defense/defense.h"

namespace defense {

class TrimmedMean : public Defense {
 public:
  // Trims ⌊beta · n⌋ values from each end of every coordinate.
  explicit TrimmedMean(double beta = 0.2);

  AggregationResult Process(const FilterContext& context,
                            const std::vector<fl::ModelUpdate>& updates) override;
  std::string Name() const override { return "Trimmed-Mean"; }

 private:
  double beta_;
};

class CoordinateMedian : public Defense {
 public:
  AggregationResult Process(const FilterContext& context,
                            const std::vector<fl::ModelUpdate>& updates) override;
  std::string Name() const override { return "Median"; }
};

}  // namespace defense

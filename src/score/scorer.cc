#include "score/scorer.h"

#include <cmath>
#include <cstdlib>
#include <string>

#include "obs/metrics.h"
#include "tensor/kernels.h"
#include "util/check.h"
#include "util/logging.h"

namespace score {
namespace {

std::optional<ScorerMode>& ModeOverride() {
  static std::optional<ScorerMode> override;
  return override;
}

// The one exact formula both backends share: same kernel calls in the same
// order, so cached and recomputed answers are bit-identical.
double SquaredDistanceFromParts(double sq_a, double sq_b, double dot) {
  const double d2 = sq_a + sq_b - 2.0 * dot;
  return d2 > 0.0 ? d2 : 0.0;
}

}  // namespace

const char* ScorerModeName(ScorerMode mode) {
  switch (mode) {
    case ScorerMode::kExact:
      return "exact";
    case ScorerMode::kIncremental:
      return "incremental";
    case ScorerMode::kQuantized:
      return "quantized";
  }
  return "?";
}

ScorerMode ScorerModeFromEnv() {
  if (ModeOverride().has_value()) {
    return *ModeOverride();
  }
  const char* env = std::getenv("AF_SCORER");
  if (env == nullptr || *env == '\0') {
    return ScorerMode::kIncremental;
  }
  const std::string value(env);
  if (value == "exact") {
    return ScorerMode::kExact;
  }
  if (value == "incremental") {
    return ScorerMode::kIncremental;
  }
  if (value == "quantized" || value == "quant") {
    return ScorerMode::kQuantized;
  }
  AF_LOG(kWarn) << "score: unknown AF_SCORER value '" << value
                << "', using incremental";
  return ScorerMode::kIncremental;
}

void SetScorerModeOverrideForTest(std::optional<ScorerMode> mode) {
  ModeOverride() = mode;
}

StreamingScorer::StreamingScorer(ScorerMode mode) : mode_(mode) {
  obs::MetricsRegistry& registry = obs::DefaultRegistry();
  inserts_ = &registry.GetCounter("score.inserts");
  evicts_ = &registry.GetCounter("score.evicts");
  ref_dist_computed_ = &registry.GetCounter("score.ref_dist_computed");
  ref_dist_cached_ = &registry.GetCounter("score.ref_dist_cached");
  approx_dist_ = &registry.GetCounter("score.approx_dist");
  slots_gauge_ = &registry.GetGauge("score.slots");
}

int StreamingScorer::Insert(std::span<const float> delta) {
  AF_CHECK(!delta.empty()) << "score: empty update";
  int slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<int>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  s.delta = delta;
  s.live = true;
  ++s.epoch;
  s.sq_norm_valid = false;
  s.ref_cache.clear();
  s.quantized_valid = false;
  ++live_count_;
  if (caching()) {
    s.sq_norm = ComputeSquaredNorm(s);
    s.sq_norm_valid = true;
    if (pairwise_active_) {
      // Rank-1 Gram update: one new row, mirrored into the columns of the
      // live peers. Dead slots keep stale entries — epochs make them
      // unreachable, and slot reuse overwrites them.
      s.gram.assign(slots_.size(), 0.0);
      s.gram_epoch.assign(slots_.size(), 0);
      for (std::size_t j = 0; j < slots_.size(); ++j) {
        Slot& peer = slots_[j];
        if (!peer.live || static_cast<int>(j) == slot) {
          continue;
        }
        const double dot = ComputeDot(s, peer);
        s.gram[j] = dot;
        s.gram_epoch[j] = peer.epoch;
        if (peer.gram.size() < slots_.size()) {
          peer.gram.resize(slots_.size(), 0.0);
          peer.gram_epoch.resize(slots_.size(), 0);
        }
        peer.gram[static_cast<std::size_t>(slot)] = dot;
        peer.gram_epoch[static_cast<std::size_t>(slot)] = s.epoch;
      }
    }
  }
  inserts_->Increment();
  slots_gauge_->Set(static_cast<double>(live_count_));
  return slot;
}

void StreamingScorer::Reattach(int slot, std::span<const float> delta) {
  AF_CHECK(IsLive(slot));
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  AF_CHECK_EQ(delta.size(), s.delta.size())
      << "score: Reattach must preserve contents";
  s.delta = delta;
}

void StreamingScorer::Evict(int slot) {
  AF_CHECK(IsLive(slot));
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  s.live = false;
  s.delta = {};
  s.ref_cache.clear();
  s.quantized_valid = false;
  free_slots_.push_back(slot);
  --live_count_;
  evicts_->Increment();
  slots_gauge_->Set(static_cast<double>(live_count_));
}

void StreamingScorer::Clear() {
  slots_.clear();
  free_slots_.clear();
  live_count_ = 0;
  pairwise_active_ = false;
  slots_gauge_->Set(0.0);
}

bool StreamingScorer::IsLive(int slot) const {
  return slot >= 0 && static_cast<std::size_t>(slot) < slots_.size() &&
         slots_[static_cast<std::size_t>(slot)].live;
}

std::span<const float> StreamingScorer::Delta(int slot) const {
  AF_CHECK(IsLive(slot));
  return slots_[static_cast<std::size_t>(slot)].delta;
}

void StreamingScorer::SetReference(std::uint64_t key,
                                   std::span<const float> estimate) {
  AF_CHECK(!estimate.empty()) << "score: empty reference";
  Reference& ref = references_[key];
  ref.estimate = estimate;
  ++ref.epoch;
  ref.quantized_valid = false;
  if (caching()) {
    ref.sq_norm = tensor::kernels::SumSquares(estimate.data(), estimate.size());
  }
}

bool StreamingScorer::HasReference(std::uint64_t key) const {
  return references_.count(key) != 0;
}

std::vector<std::uint64_t> StreamingScorer::ReferenceKeys() const {
  std::vector<std::uint64_t> keys;
  keys.reserve(references_.size());
  for (const auto& [key, ref] : references_) {
    keys.push_back(key);
  }
  return keys;
}

void StreamingScorer::ClearReferences() { references_.clear(); }

double StreamingScorer::ComputeSquaredNorm(const Slot& s) const {
  return tensor::kernels::SumSquares(s.delta.data(), s.delta.size());
}

double StreamingScorer::ComputeDot(const Slot& a, const Slot& b) const {
  AF_CHECK_EQ(a.delta.size(), b.delta.size());
  return tensor::kernels::Dot(a.delta.data(), b.delta.data(), a.delta.size());
}

double StreamingScorer::SquaredNorm(int slot) {
  AF_CHECK(IsLive(slot));
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  if (!caching()) {
    return ComputeSquaredNorm(s);
  }
  if (!s.sq_norm_valid) {
    s.sq_norm = ComputeSquaredNorm(s);
    s.sq_norm_valid = true;
  }
  return s.sq_norm;
}

void StreamingScorer::ActivatePairwise() {
  if (pairwise_active_) {
    return;
  }
  pairwise_active_ = true;
  if (!caching()) {
    return;
  }
  // One-time fill for the slots inserted before the pairwise plane woke up;
  // every later Insert extends the matrix one rank at a time.
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& a = slots_[i];
    if (!a.live) {
      continue;
    }
    if (a.gram.size() < slots_.size()) {
      a.gram.resize(slots_.size(), 0.0);
      a.gram_epoch.resize(slots_.size(), 0);
    }
    for (std::size_t j = i + 1; j < slots_.size(); ++j) {
      Slot& b = slots_[j];
      if (!b.live) {
        continue;
      }
      if (b.gram.size() < slots_.size()) {
        b.gram.resize(slots_.size(), 0.0);
        b.gram_epoch.resize(slots_.size(), 0);
      }
      const double dot = ComputeDot(a, b);
      a.gram[j] = dot;
      a.gram_epoch[j] = b.epoch;
      b.gram[i] = dot;
      b.gram_epoch[i] = a.epoch;
    }
  }
}

double StreamingScorer::Dot(int a, int b) {
  AF_CHECK(IsLive(a));
  AF_CHECK(IsLive(b));
  Slot& sa = slots_[static_cast<std::size_t>(a)];
  Slot& sb = slots_[static_cast<std::size_t>(b)];
  if (a == b) {
    return SquaredNorm(a);
  }
  if (!caching()) {
    return ComputeDot(sa, sb);
  }
  ActivatePairwise();
  const auto ub = static_cast<std::size_t>(b);
  if (sa.gram.size() <= ub || sa.gram_epoch[ub] != sb.epoch) {
    const double dot = ComputeDot(sa, sb);
    if (sa.gram.size() <= ub) {
      sa.gram.resize(slots_.size(), 0.0);
      sa.gram_epoch.resize(slots_.size(), 0);
    }
    sa.gram[ub] = dot;
    sa.gram_epoch[ub] = sb.epoch;
    const auto ua = static_cast<std::size_t>(a);
    if (sb.gram.size() <= ua) {
      sb.gram.resize(slots_.size(), 0.0);
      sb.gram_epoch.resize(slots_.size(), 0);
    }
    sb.gram[ua] = dot;
    sb.gram_epoch[ua] = sa.epoch;
  }
  return sa.gram[ub];
}

double StreamingScorer::PairwiseSquaredDistance(int a, int b) {
  if (a == b) {
    return 0.0;
  }
  return SquaredDistanceFromParts(SquaredNorm(a), SquaredNorm(b), Dot(a, b));
}

double StreamingScorer::ComputeReferenceDistance(const Reference& ref,
                                                 Slot& s) {
  AF_CHECK_EQ(ref.estimate.size(), s.delta.size());
  const double ref_sq =
      caching() ? ref.sq_norm
                : tensor::kernels::SumSquares(ref.estimate.data(),
                                              ref.estimate.size());
  double slot_sq;
  if (caching()) {
    if (!s.sq_norm_valid) {
      s.sq_norm = ComputeSquaredNorm(s);
      s.sq_norm_valid = true;
    }
    slot_sq = s.sq_norm;
  } else {
    slot_sq = ComputeSquaredNorm(s);
  }
  const double dot = tensor::kernels::Dot(ref.estimate.data(), s.delta.data(),
                                          s.delta.size());
  return std::sqrt(SquaredDistanceFromParts(ref_sq, slot_sq, dot));
}

double StreamingScorer::DistanceToReference(std::uint64_t key, int slot) {
  AF_CHECK(IsLive(slot));
  auto it = references_.find(key);
  AF_CHECK(it != references_.end()) << "score: unknown reference " << key;
  Reference& ref = it->second;
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  if (!caching()) {
    ref_dist_computed_->Increment();
    return ComputeReferenceDistance(ref, s);
  }
  auto cached = s.ref_cache.find(key);
  if (cached != s.ref_cache.end() && cached->second.first == ref.epoch) {
    ref_dist_cached_->Increment();
    return cached->second.second;
  }
  const double distance = ComputeReferenceDistance(ref, s);
  s.ref_cache[key] = {ref.epoch, distance};
  ref_dist_computed_->Increment();
  return distance;
}

const QuantizedVec& StreamingScorer::SlotQuantized(int slot) {
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  if (!s.quantized_valid) {
    s.quantized = Quantize(s.delta);
    s.quantized_valid = true;
  }
  return s.quantized;
}

StreamingScorer::ApproxDistance StreamingScorer::ApproxDistanceToReference(
    std::uint64_t key, int slot) {
  ApproxDistance out;
  if (mode_ != ScorerMode::kQuantized) {
    out.value = DistanceToReference(key, slot);
    out.bound = 0.0;
    out.exact = true;
    return out;
  }
  AF_CHECK(IsLive(slot));
  auto it = references_.find(key);
  AF_CHECK(it != references_.end()) << "score: unknown reference " << key;
  Reference& ref = it->second;
  // Reference distances change only when the reference does, so a cached
  // exact answer beats re-approximating.
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  auto cached = s.ref_cache.find(key);
  if (cached != s.ref_cache.end() && cached->second.first == ref.epoch) {
    ref_dist_cached_->Increment();
    out.value = cached->second.second;
    out.bound = 0.0;
    out.exact = true;
    return out;
  }
  if (!ref.quantized_valid) {
    ref.quantized = Quantize(ref.estimate);
    ref.quantized_valid = true;
  }
  const QuantizedVec& qs = SlotQuantized(slot);
  const double dot = ApproxDot(ref.quantized, qs);
  const double dot_bound = DotErrorBound(ref.quantized, qs);
  const double d2 = SquaredDistanceFromParts(ref.sq_norm, SquaredNorm(slot),
                                             dot);
  const double d2_bound = 2.0 * dot_bound;  // the only approximated term
  const double value = std::sqrt(d2);
  // |√x − √x̂| ≤ |x − x̂| / (√x + √x̂); with the true d unknown, fall back to
  // the conservative √bound when the approximation sits near zero.
  const double bound =
      value > 0.0 ? d2_bound / value : std::sqrt(d2_bound);
  approx_dist_->Increment();
  out.value = value;
  out.bound = bound;
  out.exact = false;
  return out;
}

}  // namespace score

#include "score/warm_kmeans.h"

#include <utility>

#include "util/serial.h"

namespace score {

void WarmKMeansState::Save(util::serial::Writer& w) const {
  w.U64(centroids.size());
  for (const std::vector<double>& c : centroids) {
    w.DoubleVec(c);
  }
}

void WarmKMeansState::Load(util::serial::Reader& r) {
  const std::uint64_t count = r.U64();
  centroids.clear();
  centroids.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    centroids.push_back(r.DoubleVec());
  }
}

cluster::KMeansResult WarmKMeans1D(std::span<const double> values,
                                   std::size_t k, std::mt19937_64& rng,
                                   WarmKMeansState& state,
                                   const cluster::KMeansOptions& options) {
  cluster::KMeansResult result;
  if (state.WarmFor(k) && values.size() >= k) {
    std::vector<std::vector<double>> points;
    points.reserve(values.size());
    for (double v : values) {
      points.push_back({v});
    }
    result = cluster::KMeansFromCentroids(points, state.centroids,
                                          options.max_iterations);
  } else {
    result = cluster::KMeans1D(values, k, rng, options);
  }
  state.centroids = result.centroids;
  return result;
}

}  // namespace score

// Int8 candidate scoring with certified error bounds.
//
// The streaming scorer's optional fast path: quantize a float vector to
// symmetric int8 (scale = max|x| / 127) once, then approximate dot products
// and distances from the 4×-smaller codes. Every approximation carries a
// rigorous error bound derived from the per-element rounding radius
// (scale / 2), so a caller can tell exactly when an approximate score is
// good enough to classify an update and when the float path must be
// consulted — "quantized candidates, exact rescoring of the borderline".
//
// Bound derivation for dot(a, b) with codes qa, qb and scales sa, sb:
//   |a_i − sa·qa_i| ≤ sa/2 per element (round-to-nearest), hence
//   |⟨a,b⟩ − sa·sb·Σ qa_i·qb_i|
//     ≤ (sb/2)·‖a‖₁ + (sa/2)·‖b‖₁ + n·(sa/2)·(sb/2)
// with ‖·‖₁ precomputed at quantization time.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace score {

struct QuantizedVec {
  std::vector<std::int8_t> codes;
  double scale = 0.0;    // dequantize: x_i ≈ scale * codes[i]
  double l1_norm = 0.0;  // ‖x‖₁ of the ORIGINAL floats (for error bounds)

  bool empty() const { return codes.empty(); }
  std::size_t size() const { return codes.size(); }
};

// Symmetric per-vector int8 quantization (round-to-nearest). An all-zero
// vector quantizes to scale 0 with all-zero codes and exact bounds.
QuantizedVec Quantize(std::span<const float> v);

// Approximate ⟨a, b⟩ from the codes. Sizes must match.
double ApproxDot(const QuantizedVec& a, const QuantizedVec& b);

// Upper bound on |ApproxDot(a, b) − exact dot|.
double DotErrorBound(const QuantizedVec& a, const QuantizedVec& b);

}  // namespace score

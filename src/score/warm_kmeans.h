// Warm-started k-means for cross-round re-clustering.
//
// AsyncFilter re-clusters the buffer's suspicious scores every round (and,
// in streaming mode, after every buffer mutation). Consecutive clusterings
// see nearly the same score distribution, so Lloyd started from the previous
// centroids converges in a couple of iterations — no k-means++ seeding, no
// restarts, no RNG draws. The first call (or a k change) falls back to the
// cold seeded path; every later call is warm and fully deterministic.
//
// WarmKMeansState is cross-round defense state: it serializes through
// Save/Load so a killed-and-resumed run takes the identical warm/cold branch
// with identical seed centroids, keeping kill-resume bit-identical.
#pragma once

#include <cstddef>
#include <random>
#include <span>
#include <vector>

#include "cluster/kmeans.h"

namespace util::serial {
class Writer;
class Reader;
}  // namespace util::serial

namespace score {

struct WarmKMeansState {
  std::vector<std::vector<double>> centroids;  // previous result, k × dim

  bool WarmFor(std::size_t k) const { return centroids.size() == k; }
  void Reset() { centroids.clear(); }

  void Save(util::serial::Writer& w) const;
  void Load(util::serial::Reader& r);
};

// Clusters 1-D values into k groups, warm-starting from `state` when its
// centroid count matches k (deterministic, no RNG) and falling back to the
// seeded cluster::KMeans1D otherwise. On return `state` holds the new
// centroids for the next call.
cluster::KMeansResult WarmKMeans1D(std::span<const double> values,
                                   std::size_t k, std::mt19937_64& rng,
                                   WarmKMeansState& state,
                                   const cluster::KMeansOptions& options = {});

}  // namespace score

// Streaming defense-scoring substrate.
//
// AsyncFilter-style rescoring recomputes every update's distance signal and
// re-clusters the whole server buffer each time the buffer changes; Krum and
// NNM recompute a full pairwise-distance table per aggregation pass. Both
// shapes reduce to three cached quantities per buffered update ω:
//
//   ‖ω‖²                       (squared norm, immutable per update)
//   ⟨ω_i, ω_j⟩                 (Gram matrix over the live buffer)
//   d(ref, ω) = √(‖ref‖² + ‖ω‖² − 2⟨ref, ω⟩)   (distance to a reference
//                                               vector, e.g. a staleness
//                                               group's moving average)
//
// StreamingScorer owns those caches and keeps them consistent across buffer
// mutations: Insert computes one new norm plus (when the pairwise plane is
// active) one new Gram row — a rank-1 add; Evict drops a row/column; a
// reference update invalidates exactly the distances derived from it. The
// exact backend answers every query by recomputing the *same formula* from
// scratch, so the two modes are bit-identical by construction and differ only
// in work — the property the tests in tests/score/ pin down and the
// AF_SCORER switch relies on.
//
// Modes (AF_SCORER=exact|incremental|quantized, default incremental):
//   exact        no caching; every query recomputes. The audit baseline.
//   incremental  norms/Gram/reference distances cached across mutations.
//   quantized    incremental, plus an int8 candidate fast path: approximate
//                distances carry a certified error bound so callers can keep
//                clear-cut verdicts cheap and exactly rescore only the
//                borderline updates (score/quantized.h).
//
// Lifetime contract: Insert borrows the caller's float storage — the span
// must stay valid until the slot is evicted, the scorer is cleared, or the
// slot is Reattach()ed to a new span holding the same contents. The
// simulator's buffer owns update payloads for exactly the window the scorer
// needs them; persistent callers (AsyncFilter across rounds) re-attach
// deferred updates as they re-enter the buffer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "score/quantized.h"

namespace obs {
class Counter;
class Gauge;
}  // namespace obs

namespace score {

enum class ScorerMode { kExact, kIncremental, kQuantized };

const char* ScorerModeName(ScorerMode mode);

// AF_SCORER environment switch; unknown values fall back to the default
// (incremental) — misconfiguration must never change verdicts, only speed.
ScorerMode ScorerModeFromEnv();

// Test hook: overrides ScorerModeFromEnv() process-wide until cleared with
// std::nullopt. Lets equivalence tests drive both backends through code that
// constructs scorers from the environment.
void SetScorerModeOverrideForTest(std::optional<ScorerMode> mode);

class StreamingScorer {
 public:
  explicit StreamingScorer(ScorerMode mode = ScorerModeFromEnv());

  ScorerMode mode() const { return mode_; }

  // --- Buffer mutations -----------------------------------------------
  // Borrows `delta` (see the lifetime contract above); returns the slot id
  // used by every query. O(d) in incremental mode (one norm) plus O(n·d)
  // for the new Gram row when the pairwise plane is active.
  int Insert(std::span<const float> delta);

  // Rebinds a live slot to new storage holding the SAME contents (a
  // deferred update re-entering the buffer from a different allocation).
  // All caches survive — contents equality is the caller's contract.
  void Reattach(int slot, std::span<const float> delta);

  // Frees the slot: O(1) — its Gram row/column entries die with it and the
  // slot id is recycled by a later Insert.
  void Evict(int slot);

  void Clear();

  std::size_t size() const { return live_count_; }
  bool IsLive(int slot) const;
  std::span<const float> Delta(int slot) const;

  // --- Reference vectors ----------------------------------------------
  // Registers (or replaces) a reference vector, e.g. the staleness group's
  // moving average. Borrows `estimate` until the next SetReference on the
  // same key or ClearReferences(); replacing bumps the reference epoch so
  // cached distances derived from the old estimate are never served.
  void SetReference(std::uint64_t key, std::span<const float> estimate);
  bool HasReference(std::uint64_t key) const;
  // All registered reference keys, ascending.
  std::vector<std::uint64_t> ReferenceKeys() const;
  void ClearReferences();

  // --- Queries: identical bits in every mode --------------------------
  double SquaredNorm(int slot);
  double Dot(int a, int b);
  // ‖ω_a − ω_b‖² via the Gram identity, clamped at 0 (cancellation can
  // leave a tiny negative); 0 when a == b.
  double PairwiseSquaredDistance(int a, int b);
  // ‖ref − ω‖ via the same identity.
  double DistanceToReference(std::uint64_t key, int slot);

  // --- Quantized candidate fast path (kQuantized) ---------------------
  // Approximate distance-to-reference with a certified error bound:
  // |value − exact| ≤ bound always holds. In non-quantized modes this
  // degrades to the exact answer with bound 0 (exact == true), so callers
  // can use one code path unconditionally.
  struct ApproxDistance {
    double value = 0.0;
    double bound = 0.0;
    bool exact = false;
  };
  ApproxDistance ApproxDistanceToReference(std::uint64_t key, int slot);

 private:
  struct Slot {
    std::span<const float> delta;
    bool live = false;
    // Caches (incremental/quantized only).
    double sq_norm = 0.0;
    bool sq_norm_valid = false;
    // Gram row vs other slots, indexed by slot id; valid entries tracked by
    // the epoch the row entry was written at vs the column slot's epoch.
    std::vector<double> gram;
    std::vector<std::uint64_t> gram_epoch;
    std::uint64_t epoch = 0;  // bumped on (re)insert
    // key → (reference epoch, distance).
    std::map<std::uint64_t, std::pair<std::uint64_t, double>> ref_cache;
    QuantizedVec quantized;  // kQuantized only
    bool quantized_valid = false;
  };

  struct Reference {
    std::span<const float> estimate;
    double sq_norm = 0.0;
    std::uint64_t epoch = 0;
    QuantizedVec quantized;
    bool quantized_valid = false;
  };

  bool caching() const { return mode_ != ScorerMode::kExact; }
  double ComputeSquaredNorm(const Slot& s) const;
  double ComputeDot(const Slot& a, const Slot& b) const;
  double ComputeReferenceDistance(const Reference& ref, Slot& s);
  void ActivatePairwise();
  const QuantizedVec& SlotQuantized(int slot);

  ScorerMode mode_;
  std::vector<Slot> slots_;
  std::vector<int> free_slots_;
  std::size_t live_count_ = 0;
  std::map<std::uint64_t, Reference> references_;
  // The Gram plane stays dormant (zero memory) until the first pairwise
  // query; from then on Insert eagerly adds the new row.
  bool pairwise_active_ = false;

  // Cached metric handles (registry lookups are mutex-guarded).
  obs::Counter* inserts_;
  obs::Counter* evicts_;
  obs::Counter* ref_dist_computed_;
  obs::Counter* ref_dist_cached_;
  obs::Counter* approx_dist_;
  obs::Gauge* slots_gauge_;
};

}  // namespace score

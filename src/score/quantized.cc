#include "score/quantized.h"

#include <cmath>

#include "util/check.h"

namespace score {

QuantizedVec Quantize(std::span<const float> v) {
  QuantizedVec q;
  q.codes.resize(v.size());
  double max_abs = 0.0;
  double l1 = 0.0;
  for (float x : v) {
    const double a = std::fabs(static_cast<double>(x));
    if (a > max_abs) {
      max_abs = a;
    }
    l1 += a;
  }
  q.l1_norm = l1;
  if (max_abs == 0.0) {
    q.scale = 0.0;
    return q;  // codes already zero-initialized
  }
  q.scale = max_abs / 127.0;
  const double inv = 127.0 / max_abs;
  for (std::size_t i = 0; i < v.size(); ++i) {
    // Round-to-nearest; |v_i| ≤ max_abs keeps codes in [−127, 127].
    const double scaled = static_cast<double>(v[i]) * inv;
    q.codes[i] = static_cast<std::int8_t>(std::lrint(scaled));
  }
  return q;
}

double ApproxDot(const QuantizedVec& a, const QuantizedVec& b) {
  AF_CHECK_EQ(a.size(), b.size());
  // Unrolled int accumulation: per-element products fit in int16 ((±127)²),
  // partial sums in int32 for 2^16 elements, folded into int64 in chunks so
  // arbitrary dimensions never overflow.
  const std::int8_t* pa = a.codes.data();
  const std::int8_t* pb = b.codes.data();
  std::size_t n = a.size();
  std::int64_t total = 0;
  while (n > 0) {
    const std::size_t chunk = n < 65536 ? n : 65536;
    std::int32_t acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
    std::size_t i = 0;
    for (; i + 4 <= chunk; i += 4) {
      acc0 += static_cast<std::int32_t>(pa[i + 0]) * pb[i + 0];
      acc1 += static_cast<std::int32_t>(pa[i + 1]) * pb[i + 1];
      acc2 += static_cast<std::int32_t>(pa[i + 2]) * pb[i + 2];
      acc3 += static_cast<std::int32_t>(pa[i + 3]) * pb[i + 3];
    }
    for (; i < chunk; ++i) {
      acc0 += static_cast<std::int32_t>(pa[i]) * pb[i];
    }
    total += static_cast<std::int64_t>(acc0) + acc1 + acc2 + acc3;
    pa += chunk;
    pb += chunk;
    n -= chunk;
  }
  return a.scale * b.scale * static_cast<double>(total);
}

double DotErrorBound(const QuantizedVec& a, const QuantizedVec& b) {
  AF_CHECK_EQ(a.size(), b.size());
  const double ea = a.scale * 0.5;
  const double eb = b.scale * 0.5;
  return eb * a.l1_norm + ea * b.l1_norm +
         static_cast<double>(a.size()) * ea * eb;
}

}  // namespace score
